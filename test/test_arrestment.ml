(* Tests for the arrestment target system: physics, environment glue,
   the six control modules, the static model and full golden runs. *)

open Arrestment

let close = Alcotest.(check (float 1e-9))

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let store () =
  Propane.Signal_store.create ~signals:Signals.store_layout ()

let name = Propagation.Signal.name

(* ------------------------------------------------------------------ *)

let physics_tests =
  [
    Alcotest.test_case "full pressure stops every envelope corner" `Quick
      (fun () ->
        List.iter
          (fun (mass_kg, velocity_mps) ->
            let p = Physics.create ~mass_kg ~velocity_mps in
            let steps = ref 0 in
            while (not (Physics.at_rest p)) && !steps < 60_000 do
              Physics.step_ms p ~commanded_pressure:Params.pressure_full_scale;
              incr steps
            done;
            Alcotest.(check bool) "at rest" true (Physics.at_rest p);
            Alcotest.(check bool)
              "within runway" true
              (Physics.position_m p < Params.runway_length_m))
          [ (8_000.0, 40.0); (8_000.0, 80.0); (20_000.0, 40.0); (20_000.0, 80.0) ]);
    Alcotest.test_case "velocity never increases" `Quick (fun () ->
        let p = Physics.create ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        let prev = ref (Physics.velocity_mps p) in
        for _ = 1 to 5_000 do
          Physics.step_ms p ~commanded_pressure:10_000;
          Alcotest.(check bool) "monotone" true (Physics.velocity_mps p <= !prev);
          prev := Physics.velocity_mps p
        done);
    Alcotest.test_case "position is monotone" `Quick (fun () ->
        let p = Physics.create ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        let prev = ref 0.0 in
        for _ = 1 to 5_000 do
          Physics.step_ms p ~commanded_pressure:0;
          Alcotest.(check bool) "monotone" true (Physics.position_m p >= !prev);
          prev := Physics.position_m p
        done);
    Alcotest.test_case "valve follows the command with lag" `Quick (fun () ->
        let p = Physics.create ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        Physics.step_ms p ~commanded_pressure:60_000;
        let after_1ms = Physics.applied_pressure p in
        Alcotest.(check bool) "lagging" true (after_1ms < 60_000 && after_1ms > 0);
        for _ = 1 to 1_000 do
          Physics.step_ms p ~commanded_pressure:60_000
        done;
        Alcotest.(check bool)
          "converged" true
          (Physics.applied_pressure p > 59_000));
    Alcotest.test_case "pulses follow position" `Quick (fun () ->
        let p = Physics.create ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        for _ = 1 to 1_000 do
          Physics.step_ms p ~commanded_pressure:0
        done;
        Alcotest.(check int)
          "pulses = floor(x * ppm)"
          (int_of_float (Float.floor (Physics.position_m p *. Params.pulses_per_metre)))
          (Physics.total_pulses p));
    Alcotest.test_case "no braking overruns the runway" `Quick (fun () ->
        let p = Physics.create ~mass_kg:20_000.0 ~velocity_mps:80.0 in
        let steps = ref 0 in
        while (not (Physics.overrun p)) && !steps < 60_000 do
          Physics.step_ms p ~commanded_pressure:0;
          incr steps
        done;
        Alcotest.(check bool) "overrun" true (Physics.overrun p));
    check_raises_invalid "non-positive mass rejected" (fun () ->
        Physics.create ~mass_kg:0.0 ~velocity_mps:60.0);
    check_raises_invalid "non-positive velocity rejected" (fun () ->
        Physics.create ~mass_kg:10.0 ~velocity_mps:0.0);
    Alcotest.test_case "commanded pressure is clamped" `Quick (fun () ->
        let p = Physics.create ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        Physics.step_ms p ~commanded_pressure:999_999;
        Alcotest.(check bool)
          "within scale" true
          (Physics.applied_pressure p <= Params.pressure_full_scale));
  ]

(* ------------------------------------------------------------------ *)

let environment_tests =
  [
    Alcotest.test_case "TCNT advances every millisecond" `Quick (fun () ->
        let st = store () in
        let env = Environment.create st ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        Environment.pre_step env;
        Environment.pre_step env;
        Alcotest.(check int)
          "ticks" (2 * Params.tcnt_ticks_per_ms)
          (Propane.Signal_store.peek st (name Signals.tcnt)));
    Alcotest.test_case "PACNT accumulates drum pulses" `Quick (fun () ->
        let st = store () in
        let env = Environment.create st ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        for _ = 1 to 100 do
          Environment.pre_step env;
          Propane.Signal_store.poke st (name Signals.toc2) 0;
          Environment.post_step env
        done;
        (* 100 ms at ~60 m/s is ~6 m, i.e. ~60 pulses. *)
        let pacnt = Propane.Signal_store.peek st (name Signals.pacnt) in
        Alcotest.(check bool)
          "plausible" true
          (pacnt > 40 && pacnt < 80));
    Alcotest.test_case "TIC1 latches after a pulse" `Quick (fun () ->
        let st = store () in
        let env = Environment.create st ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        for _ = 1 to 50 do
          Environment.pre_step env;
          Environment.post_step env
        done;
        let tic1 = Propane.Signal_store.peek st (name Signals.tic1) in
        let tcnt = Propane.Signal_store.peek st (name Signals.tcnt) in
        Alcotest.(check bool) "latched" true (tic1 > 0);
        (* At 60 m/s pulses are < 2 ms apart: the gap stays small. *)
        Alcotest.(check bool)
          "recent" true
          ((tcnt - tic1) land 0xFFFF < 10 * Params.tcnt_ticks_per_ms));
    Alcotest.test_case "conversion overwrites the ADC register" `Quick
      (fun () ->
        let st = store () in
        let env = Environment.create st ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        Propane.Signal_store.poke st (name Signals.adc) 12_345;
        Environment.convert_adc env;
        Alcotest.(check int)
          "fresh conversion" 0
          (Propane.Signal_store.peek st (name Signals.adc)));
    Alcotest.test_case "finished after sustained rest" `Quick (fun () ->
        let st = store () in
        let env = Environment.create st ~mass_kg:8_000.0 ~velocity_mps:40.0 in
        let steps = ref 0 in
        while (not (Environment.finished env)) && !steps < 60_000 do
          Environment.pre_step env;
          Propane.Signal_store.poke st (name Signals.toc2) 3_000;
          Environment.post_step env;
          incr steps
        done;
        Alcotest.(check bool) "finished" true (Environment.finished env);
        Alcotest.(check int) "elapsed" !steps (Environment.elapsed_ms env));
  ]

(* ------------------------------------------------------------------ *)

let module_tests =
  [
    Alcotest.test_case "CLOCK: slot number cycles mod 7" `Quick (fun () ->
        let st = store () in
        let clock = Clock_mod.create st in
        let seen = ref [] in
        for _ = 1 to 14 do
          Clock_mod.step clock;
          seen :=
            Propane.Signal_store.peek st (name Signals.ms_slot_nbr) :: !seen
        done;
        Alcotest.(check (list int))
          "cycle"
          [ 0; 6; 5; 4; 3; 2; 1; 0; 6; 5; 4; 3; 2; 1 ]
          !seen);
    Alcotest.test_case "CLOCK: mscnt counts activations" `Quick (fun () ->
        let st = store () in
        let clock = Clock_mod.create st in
        for _ = 1 to 5 do
          Clock_mod.step clock
        done;
        Alcotest.(check int)
          "mscnt" 5
          (Propane.Signal_store.peek st (name Signals.mscnt)));
    Alcotest.test_case "CLOCK: mscnt independent of slot corruption" `Quick
      (fun () ->
        let st = store () in
        let clock = Clock_mod.create st in
        Clock_mod.step clock;
        Propane.Signal_store.poke st (name Signals.ms_slot_nbr) 5_000;
        Clock_mod.step clock;
        Alcotest.(check int)
          "mscnt" 2
          (Propane.Signal_store.peek st (name Signals.mscnt)));
    Alcotest.test_case "DIST_S: accepts plausible pulses" `Quick (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        (* Simulate 2 pulses with a fresh capture. *)
        Propane.Signal_store.poke st (name Signals.tcnt) 1_000;
        Propane.Signal_store.poke st (name Signals.tic1) 950;
        Propane.Signal_store.poke st (name Signals.pacnt) 2;
        Dist_s.step dist;
        Alcotest.(check int)
          "pulscnt" 2
          (Propane.Signal_store.peek st (name Signals.pulscnt)));
    Alcotest.test_case "DIST_S: rejects pulses with a stale capture gap"
      `Quick (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        Propane.Signal_store.poke st (name Signals.tcnt) 10_000;
        Propane.Signal_store.poke st (name Signals.tic1) 0;
        Propane.Signal_store.poke st (name Signals.pacnt) 2;
        Dist_s.step dist;
        Alcotest.(check int)
          "pulscnt" 0
          (Propane.Signal_store.peek st (name Signals.pulscnt)));
    Alcotest.test_case "DIST_S: clamps implausible bursts" `Quick (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        Propane.Signal_store.poke st (name Signals.tcnt) 1_000;
        Propane.Signal_store.poke st (name Signals.tic1) 950;
        Propane.Signal_store.poke st (name Signals.pacnt) 500;
        Dist_s.step dist;
        Alcotest.(check int)
          "clamped" 3
          (Propane.Signal_store.peek st (name Signals.pulscnt)));
    Alcotest.test_case "DIST_S: slow_speed from a long pulse gap" `Quick
      (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        (* One pulse, then a gap beyond the slow threshold. *)
        Propane.Signal_store.poke st (name Signals.tcnt) 100;
        Propane.Signal_store.poke st (name Signals.tic1) 90;
        Propane.Signal_store.poke st (name Signals.pacnt) 1;
        Dist_s.step dist;
        Alcotest.(check int)
          "fast" 0
          (Propane.Signal_store.peek st (name Signals.slow_speed));
        Propane.Signal_store.poke st (name Signals.tcnt)
          (100 + Params.slow_speed_gap_ticks + 10);
        Dist_s.step dist;
        Alcotest.(check int)
          "slow" 1
          (Propane.Signal_store.peek st (name Signals.slow_speed)));
    Alcotest.test_case "DIST_S: stopped needs a long pulse-free streak" `Quick
      (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        Propane.Signal_store.poke st (name Signals.tcnt) 100;
        Propane.Signal_store.poke st (name Signals.tic1) 90;
        Propane.Signal_store.poke st (name Signals.pacnt) 1;
        Dist_s.step dist;
        for _ = 1 to Params.stopped_debounce_ms - 1 do
          Dist_s.step dist
        done;
        Alcotest.(check int)
          "not yet" 0
          (Propane.Signal_store.peek st (name Signals.stopped));
        Dist_s.step dist;
        Alcotest.(check int)
          "stopped" 1
          (Propane.Signal_store.peek st (name Signals.stopped)));
    Alcotest.test_case "DIST_S: stopped stays clear before any pulse" `Quick
      (fun () ->
        let st = store () in
        let dist = Dist_s.create st in
        for _ = 1 to Params.stopped_debounce_ms + 50 do
          Dist_s.step dist
        done;
        Alcotest.(check int)
          "clear" 0
          (Propane.Signal_store.peek st (name Signals.stopped)));
    Alcotest.test_case "PRES_S: conversion result reaches InValue" `Quick
      (fun () ->
        let st = store () in
        let pres =
          Pres_s.create st ~start_conversion:(fun () ->
              Propane.Signal_store.poke st (name Signals.adc) 4_321)
        in
        Pres_s.step pres;
        Alcotest.(check int)
          "copied" 4_321
          (Propane.Signal_store.peek st (name Signals.in_value)));
    Alcotest.test_case "PRES_S: one-sample spikes are rejected" `Quick
      (fun () ->
        let st = store () in
        let value = ref 1_000 in
        let pres =
          Pres_s.create st ~start_conversion:(fun () ->
              Propane.Signal_store.poke st (name Signals.adc) !value)
        in
        Pres_s.step pres;
        value := 1_000 + Params.pres_spike_limit + 500;
        Pres_s.step pres;
        Alcotest.(check int)
          "held" 1_000
          (Propane.Signal_store.peek st (name Signals.in_value));
        (* The second out-of-band sample is accepted as a step change. *)
        Pres_s.step pres;
        Alcotest.(check int)
          "accepted" !value
          (Propane.Signal_store.peek st (name Signals.in_value)));
    Alcotest.test_case "CALC: advances at a checkpoint and sets pressure"
      `Quick (fun () ->
        let st = store () in
        let calc = Calc.create st in
        Propane.Signal_store.poke st (name Signals.mscnt) 100;
        Propane.Signal_store.poke st (name Signals.pulscnt)
          Params.checkpoint_pulses.(0);
        Calc.step calc;
        Alcotest.(check int)
          "i advanced" 1
          (Propane.Signal_store.peek st (name Signals.i));
        Alcotest.(check bool)
          "pressure set" true
          (Propane.Signal_store.peek st (name Signals.set_value) > 0));
    Alcotest.test_case "CALC: before the checkpoint, the initial set point"
      `Quick (fun () ->
        let st = store () in
        let calc = Calc.create st in
        Propane.Signal_store.poke st (name Signals.mscnt) 1;
        Propane.Signal_store.poke st (name Signals.pulscnt) 10;
        Calc.step calc;
        Alcotest.(check int)
          "i" 0
          (Propane.Signal_store.peek st (name Signals.i));
        Alcotest.(check int)
          "initial" Params.initial_set_value
          (Propane.Signal_store.peek st (name Signals.set_value)));
    Alcotest.test_case "CALC: slow speed drops the set point and ends \
                        checkpointing" `Quick (fun () ->
        let st = store () in
        let calc = Calc.create st in
        Propane.Signal_store.poke st (name Signals.slow_speed) 1;
        Calc.step calc;
        Alcotest.(check int)
          "slow pressure" Params.slow_speed_set_value
          (Propane.Signal_store.peek st (name Signals.set_value));
        Alcotest.(check int)
          "index fast-forwarded"
          (Array.length Params.checkpoint_pulses)
          (Propane.Signal_store.peek st (name Signals.i)));
    Alcotest.test_case "CALC: stopped latches the finished state" `Quick
      (fun () ->
        let st = store () in
        let calc = Calc.create st in
        Propane.Signal_store.poke st (name Signals.stopped) 1;
        Calc.step calc;
        Propane.Signal_store.poke st (name Signals.stopped) 0;
        Calc.step calc;
        Alcotest.(check int)
          "pressure stays zero" 0
          (Propane.Signal_store.peek st (name Signals.set_value)));
    Alcotest.test_case "CALC: corrupted index is written back raw" `Quick
      (fun () ->
        let st = store () in
        let calc = Calc.create st in
        Propane.Signal_store.poke st (name Signals.i) 5_000;
        Propane.Signal_store.poke st (name Signals.pulscnt) 1;
        Calc.step calc;
        Alcotest.(check int)
          "raw" 5_000
          (Propane.Signal_store.peek st (name Signals.i)));
    Alcotest.test_case "V_REG: converges on the set point" `Quick (fun () ->
        let st = store () in
        let vreg = V_reg.create st in
        Propane.Signal_store.poke st (name Signals.set_value) 10_000;
        for _ = 1 to 50 do
          (* Pretend the plant follows perfectly. *)
          Propane.Signal_store.poke st (name Signals.in_value)
            (Propane.Signal_store.peek st (name Signals.out_value));
          V_reg.step vreg
        done;
        let out = Propane.Signal_store.peek st (name Signals.out_value) in
        Alcotest.(check bool)
          "near set point" true
          (abs (out - 10_000) < 1_000));
    Alcotest.test_case "V_REG: output clamped to the pressure range" `Quick
      (fun () ->
        let st = store () in
        let vreg = V_reg.create st in
        Propane.Signal_store.poke st (name Signals.set_value) 60_000;
        Propane.Signal_store.poke st (name Signals.in_value) 0;
        for _ = 1 to 100 do
          V_reg.step vreg
        done;
        Alcotest.(check bool)
          "clamped" true
          (Propane.Signal_store.peek st (name Signals.out_value)
          <= Params.pressure_full_scale));
    Alcotest.test_case "PRES_A: scales the command into the PWM register"
      `Quick (fun () ->
        let st = store () in
        Propane.Signal_store.poke st (name Signals.out_value) 48_000;
        Pres_a.step (Pres_a.create st);
        Alcotest.(check int)
          "TOC2" (48_000 lsr Params.toc2_shift)
          (Propane.Signal_store.peek st (name Signals.toc2)));
    Alcotest.test_case "PRES_A: PWM resolution hides low bits" `Quick
      (fun () ->
        let st = store () in
        let pres_a = Pres_a.create st in
        Propane.Signal_store.poke st (name Signals.out_value) 48_000;
        Pres_a.step pres_a;
        let before = Propane.Signal_store.peek st (name Signals.toc2) in
        Propane.Signal_store.poke st (name Signals.out_value) 48_007;
        Pres_a.step pres_a;
        Alcotest.(check int)
          "unchanged" before
          (Propane.Signal_store.peek st (name Signals.toc2)));
  ]

(* ------------------------------------------------------------------ *)

let model_tests =
  [
    Alcotest.test_case "25 input/output pairs" `Quick (fun () ->
        Alcotest.(check int)
          "pairs" 25
          (Propagation.System_model.pair_count Model.system));
    Alcotest.test_case "13 injection targets" `Quick (fun () ->
        Alcotest.(check int) "targets" 13 (List.length Model.injection_targets);
        Alcotest.(check bool)
          "TOC2 is not a target" false
          (List.mem "TOC2" Model.injection_targets));
    Alcotest.test_case "six modules in paper order" `Quick (fun () ->
        Alcotest.(check (list string))
          "names"
          [ "CLOCK"; "DIST_S"; "PRES_S"; "CALC"; "V_REG"; "PRES_A" ]
          Model.module_names);
    Alcotest.test_case "paper numbering: PACNT is input 1 of DIST_S" `Quick
      (fun () ->
        let dist = Propagation.System_model.find_module_exn Model.system "DIST_S" in
        Alcotest.(check (option int))
          "port" (Some 1)
          (Propagation.Sw_module.input_index dist Signals.pacnt));
    Alcotest.test_case "paper numbering: SetValue is output 2 of CALC" `Quick
      (fun () ->
        let calc = Propagation.System_model.find_module_exn Model.system "CALC" in
        Alcotest.(check (option int))
          "port" (Some 2)
          (Propagation.Sw_module.output_index calc Signals.set_value));
    Alcotest.test_case "CALC and CLOCK have the paper's feedback loops" `Quick
      (fun () ->
        let feedback name' =
          Propagation.Sw_module.feedback_signals
            (Propagation.System_model.find_module_exn Model.system name')
        in
        Alcotest.(check (list string))
          "CALC" [ "i" ]
          (List.map Propagation.Signal.name (feedback "CALC"));
        Alcotest.(check (list string))
          "CLOCK" [ "ms_slot_nbr" ]
          (List.map Propagation.Signal.name (feedback "CLOCK")));
    Alcotest.test_case "paper matrices reproduce Table 2 aggregates" `Quick
      (fun () ->
        let matrices = Model.paper_matrices () in
        let m name' = Propagation.String_map.find name' matrices in
        close "CLOCK P" 0.500 (Propagation.Perm_matrix.relative (m "CLOCK"));
        close "CLOCK Pnw" 1.000 (Propagation.Perm_matrix.non_weighted (m "CLOCK"));
        close "DIST_S Pnw" 0.715
          (Propagation.Perm_matrix.non_weighted (m "DIST_S"));
        close "PRES_S Pnw" 0.000
          (Propagation.Perm_matrix.non_weighted (m "PRES_S"));
        Alcotest.(check (float 5e-4))
          "CALC P" 0.523
          (Propagation.Perm_matrix.relative (m "CALC"));
        close "V_REG P" 0.902 (Propagation.Perm_matrix.relative (m "V_REG"));
        close "PRES_A P" 0.860 (Propagation.Perm_matrix.relative (m "PRES_A")));
    Alcotest.test_case "paper matrices reproduce Table 2 exposures" `Quick
      (fun () ->
        let graph =
          Propagation.Perm_graph.build_exn Model.system (Model.paper_matrices ())
        in
        Alcotest.(check (float 5e-4))
          "CALC Xnw" 3.130
          (Propagation.Exposure.module_exposure_nw graph "CALC");
        Alcotest.(check (float 5e-4))
          "CALC X" 0.313
          (Propagation.Exposure.module_exposure graph "CALC");
        Alcotest.(check (float 2e-3))
          "V_REG Xnw" 2.815
          (Propagation.Exposure.module_exposure_nw graph "V_REG");
        Alcotest.(check (float 5e-4))
          "PRES_A Xnw" 1.804
          (Propagation.Exposure.module_exposure_nw graph "PRES_A");
        close "CLOCK X" 0.500
          (Propagation.Exposure.module_exposure graph "CLOCK"));
    Alcotest.test_case "paper matrices reproduce Table 3 exposures" `Quick
      (fun () ->
        let graph =
          Propagation.Perm_graph.build_exn Model.system (Model.paper_matrices ())
        in
        let x sg = Propagation.Exposure.signal_exposure graph sg in
        close "SetValue" 2.814 (x Signals.set_value);
        close "OutValue" 1.804 (x Signals.out_value);
        close "TOC2" 0.860 (x Signals.toc2);
        close "slow_speed" 0.223 (x Signals.slow_speed);
        close "stopped" 0.000 (x Signals.stopped);
        close "mscnt" 0.000 (x Signals.mscnt);
        close "InValue" 0.000 (x Signals.in_value));
    Alcotest.test_case "backtrack tree of TOC2 has the paper's 22 paths"
      `Quick (fun () ->
        let graph =
          Propagation.Perm_graph.build_exn Model.system (Model.paper_matrices ())
        in
        let tree = Propagation.Backtrack_tree.build graph Signals.toc2 in
        Alcotest.(check int)
          "total" 22
          (Propagation.Backtrack_tree.leaf_count tree);
        Alcotest.(check int)
          "non-zero (Table 4)" 13
          (List.length
             (Propagation.Path.non_zero
                (Propagation.Path.of_backtrack_tree tree))));
    Alcotest.test_case "trace tree of ADC is the Fig. 11 chain" `Quick
      (fun () ->
        let graph =
          Propagation.Perm_graph.build_exn Model.system (Model.paper_matrices ())
        in
        let tree = Propagation.Trace_tree.build graph Signals.adc in
        Alcotest.(check int) "one path" 1 (Propagation.Trace_tree.leaf_count tree);
        Alcotest.(check int) "depth" 4 (Propagation.Trace_tree.depth tree));
    Alcotest.test_case "trace tree of PACNT never nests i under i (Fig. 12)"
      `Quick (fun () ->
        let graph =
          Propagation.Perm_graph.build_exn Model.system (Model.paper_matrices ())
        in
        let tree = Propagation.Trace_tree.build graph Signals.pacnt in
        Propagation.Trace_tree.fold
          (fun () (n : Propagation.Trace_tree.node) ->
            if Propagation.Signal.equal n.signal Signals.i then
              List.iter
                (fun (c : Propagation.Trace_tree.child) ->
                  Alcotest.(check bool)
                    "no i under i" false
                    (Propagation.Signal.equal c.node.signal Signals.i))
                n.children)
          () tree);
  ]

(* ------------------------------------------------------------------ *)

let golden_run_tests =
  let sut = System.sut () in
  [
    Alcotest.test_case "arrestments complete across the envelope" `Slow
      (fun () ->
        List.iter
          (fun (mass_kg, velocity_mps) ->
            let tc = System.testcase ~mass_kg ~velocity_mps in
            let traces = Propane.Runner.golden_run sut tc in
            let dur = Propane.Trace_set.duration_ms traces in
            let final s =
              Propane.Trace.get (Propane.Trace_set.trace traces s) (dur - 1)
            in
            Alcotest.(check bool)
              "long enough for the injection window" true (dur > 5_100);
            Alcotest.(check int) "stopped" 1 (final "stopped");
            Alcotest.(check int) "set value zeroed" 0 (final "SetValue");
            Alcotest.(check bool)
              "within runway" true
              (float_of_int (final "pulscnt") /. Params.pulses_per_metre
              < Params.runway_length_m))
          [
            (8_000.0, 40.0);
            (8_000.0, 80.0);
            (14_000.0, 60.0);
            (20_000.0, 40.0);
            (20_000.0, 80.0);
          ]);
    Alcotest.test_case "golden runs are deterministic" `Slow (fun () ->
        let tc = System.testcase ~mass_kg:12_000.0 ~velocity_mps:55.0 in
        let a = Propane.Runner.golden_run sut tc in
        let b = Propane.Runner.golden_run sut tc in
        Alcotest.(check int)
          "no divergences" 0
          (List.length (Propane.Golden.compare_runs ~golden:a ~run:b ())));
    Alcotest.test_case "pulscnt is plausible against physics" `Slow (fun () ->
        let tc = System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        let traces = Propane.Runner.golden_run sut tc in
        let dur = Propane.Trace_set.duration_ms traces in
        let final =
          Propane.Trace.get (Propane.Trace_set.trace traces "pulscnt") (dur - 1)
        in
        Alcotest.(check bool)
          "within runway pulses" true
          (final > 500
          && float_of_int final
             < Params.runway_length_m *. Params.pulses_per_metre));
    Alcotest.test_case "checkpoint index reaches the final phase" `Slow
      (fun () ->
        let tc = System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        let traces = Propane.Runner.golden_run sut tc in
        let dur = Propane.Trace_set.duration_ms traces in
        Alcotest.(check int)
          "i" 6
          (Propane.Trace.get (Propane.Trace_set.trace traces "i") (dur - 1)));
    Alcotest.test_case "slow_speed precedes stopped" `Slow (fun () ->
        let tc = System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0 in
        let traces = Propane.Runner.golden_run sut tc in
        let first_one s =
          let trace = Propane.Trace_set.trace traces s in
          let n = Propane.Trace.length trace in
          let rec go j =
            if j >= n then None
            else if Propane.Trace.get trace j = 1 then Some j
            else go (j + 1)
          in
          go 0
        in
        match (first_one "slow_speed", first_one "stopped") with
        | Some slow, Some stopped ->
            Alcotest.(check bool) "order" true (slow < stopped)
        | _ -> Alcotest.fail "both flags must fire in a golden run");
  ]

(* ------------------------------------------------------------------ *)

let campaign_tests =
  [
    Alcotest.test_case "mini campaign reproduces the paper's structure" `Slow
      (fun () ->
        let campaign =
          Propane.Campaign.make ~name:"structure"
            ~targets:Model.injection_targets
            ~testcases:[ System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0 ]
            ~times:[ Simkernel.Sim_time.of_ms 1_500 ]
            ~errors:(Propane.Error_model.bit_flips ~width:Signals.width)
        in
        let results =
          Propane.Runner.run
            ~config:
              (Propane.Runner.Config.make ~seed:5L ~truncate_after_ms:128 ())
            (System.sut ())
            campaign
        in
        match Propane.Estimator.estimate_all ~model:Model.system results with
        | Error msg -> Alcotest.fail msg
        | Ok matrices ->
            let m name' = Propagation.String_map.find name' matrices in
            let get name' i k =
              Propagation.Perm_matrix.get (m name') ~input:i ~output:k
            in
            (* CLOCK row [0; 1] — exactly the paper's Table 1/2. *)
            close "slot->mscnt" 0.0 (get "CLOCK" 1 1);
            close "slot->slot" 1.0 (get "CLOCK" 1 2);
            (* PRES_S is non-permeable (OB3). *)
            close "ADC->InValue" 0.0 (get "PRES_S" 1 1);
            (* The stopped column is all zero (OB2). *)
            close "PACNT->stopped" 0.0 (get "DIST_S" 1 3);
            close "TIC1->stopped" 0.0 (get "DIST_S" 2 3);
            close "TCNT->stopped" 0.0 (get "DIST_S" 3 3);
            (* i -> i is the sentinel 1.000 of Table 1. *)
            close "i->i" 1.0 (get "CALC" 5 1);
            (* The high-permeability hot path SetValue -> OutValue -> TOC2. *)
            Alcotest.(check bool)
              "SetValue->OutValue high" true
              (get "V_REG" 1 1 > 0.8);
            Alcotest.(check bool)
              "OutValue->TOC2 high" true
              (get "PRES_A" 1 1 > 0.5));
  ]

(* ------------------------------------------------------------------ *)
(* Properties of golden runs over the whole workload envelope. *)

let envelope_gen =
  QCheck2.Gen.(pair (float_range 8_000.0 20_000.0) (float_range 40.0 80.0))

let trace_values traces signal =
  Propane.Trace.to_list (Propane.Trace_set.trace traces signal)

let monotone values =
  match values with
  | [] -> true
  | _ :: tail -> List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length tail) values) tail

let envelope_tests =
  let sut = System.sut () in
  let golden (mass_kg, velocity_mps) =
    Propane.Runner.golden_run sut (System.testcase ~mass_kg ~velocity_mps)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"every arrestment in the envelope completes in bounds" ~count:12
         envelope_gen (fun case ->
           let traces = golden case in
           let dur = Propane.Trace_set.duration_ms traces in
           let final s =
             Propane.Trace.get (Propane.Trace_set.trace traces s) (dur - 1)
           in
           dur > 5_100
           && dur < Propane.Runner.default_max_ms
           && final "stopped" = 1
           && float_of_int (final "pulscnt") /. Params.pulses_per_metre
              < Params.runway_length_m));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"pulscnt and i never decrease in a golden run"
         ~count:8 envelope_gen (fun case ->
           let traces = golden case in
           monotone (trace_values traces "pulscnt")
           && monotone (trace_values traces "i")));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"stopped latches: once raised it stays raised"
         ~count:8 envelope_gen (fun case ->
           let traces = golden case in
           monotone (trace_values traces "stopped")));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"TOC2 never exceeds the scaled valve range"
         ~count:8 envelope_gen (fun case ->
           let traces = golden case in
           List.for_all
             (fun v -> v <= Params.pressure_full_scale lsr Params.toc2_shift)
             (trace_values traces "TOC2")));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"the slot number trace cycles through 0..6"
         ~count:5 envelope_gen (fun case ->
           let traces = golden case in
           List.for_all
             (fun v -> 0 <= v && v < 7)
             (trace_values traces "ms_slot_nbr")));
  ]

let () =
  Alcotest.run "arrestment"
    [
      ("physics", physics_tests);
      ("environment", environment_tests);
      ("modules", module_tests);
      ("model", model_tests);
      ("golden_runs", golden_run_tests);
      ("campaign", campaign_tests);
      ("envelope", envelope_tests);
    ]
