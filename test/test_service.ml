(* Tests for the campaign service (lib/service): the JSON and HTTP
   codecs, the manifest ledger, and in-process integration of the
   daemon + fleet workers — including the headline guarantees: journals
   byte-identical to solo runs however campaigns interleave over one
   fleet, crash-and-restart resume, and named backpressure rejections. *)

module Service = Propane_service.Service
module Json = Propane_service.Json
module Http = Propane_service.Http
module Manifest = Propane_service.Manifest

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              pure Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Num (float_of_int i)) (int_range (-1000) 1000);
              map (fun f -> Json.Num f) (float_bound_inclusive 1e6);
              map
                (fun s -> Json.Str s)
                (string_size ~gen:char (int_range 0 12));
            ]
        in
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map
                (fun xs -> Json.List xs)
                (list_size (int_range 0 4) (self (n / 2)));
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:char (int_range 0 8)) (self (n / 2))));
            ]))

let json_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"print/parse round-trips" gen_json
         (fun j -> Json.parse (Json.to_string j) = Ok j));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:1000 ~name:"parsing garbage never raises"
         QCheck2.Gen.(string_size ~gen:char (int_range 0 40))
         (fun s -> match Json.parse s with Ok _ | Error _ -> true));
    Alcotest.test_case "escapes and unicode decode" `Quick (fun () ->
        (match Json.parse {|"a\tb\nA\\"|} with
        | Ok (Json.Str s) -> Alcotest.(check string) "str" "a\tb\nA\\" s
        | _ -> Alcotest.fail "escaped string did not parse");
        match Json.parse {|{"x": [1, 2.5, true, null]}|} with
        | Ok j ->
            Alcotest.(check (option (list (float 1e-9))))
              "array" (Some [ 1.0; 2.5 ])
              (Option.map
                 (List.filter_map Json.num)
                 (Option.bind (Json.member "x" j) Json.list))
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "trailing bytes and truncations are errors" `Quick
      (fun () ->
        (match Json.parse "{} junk" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "trailing bytes accepted");
        List.iter
          (fun s ->
            match Json.parse s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S accepted" s)
          [ "{"; "["; {|{"a":}|}; {|"unterminated|}; "01"; "tru"; "" ]);
  ]

(* ------------------------------------------------------------------ *)
(* HTTP server parser                                                  *)

let http_tests =
  [
    Alcotest.test_case "request parses however bytes arrive" `Quick
      (fun () ->
        let raw =
          "POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody"
        in
        (* Whole, byte-by-byte, and split mid-header. *)
        let feeds =
          [
            [ raw ];
            List.init (String.length raw) (fun i -> String.make 1 raw.[i]);
            [ String.sub raw 0 20; String.sub raw 20 (String.length raw - 20) ];
          ]
        in
        List.iter
          (fun chunks ->
            let c = Http.conn () in
            List.iter (Http.feed c) chunks;
            match Http.next c with
            | Ok (Some r) ->
                Alcotest.(check string) "meth" "POST" r.Http.meth;
                Alcotest.(check string) "path" "/campaigns" r.Http.path;
                Alcotest.(check string) "body" "body" r.Http.body;
                Alcotest.(check (option string))
                  "header" (Some "4")
                  (List.assoc_opt "content-length" r.Http.headers)
            | Ok None -> Alcotest.fail "request incomplete"
            | Error msg -> Alcotest.fail msg)
          feeds);
    Alcotest.test_case "pipelined requests come out one by one" `Quick
      (fun () ->
        let c = Http.conn () in
        Http.feed c "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        (match Http.next c with
        | Ok (Some r) -> Alcotest.(check string) "first" "/a" r.Http.path
        | _ -> Alcotest.fail "first request missing");
        match Http.next c with
        | Ok (Some r) -> Alcotest.(check string) "second" "/b" r.Http.path
        | _ -> Alcotest.fail "second request missing");
    Alcotest.test_case "oversized header block poisons the connection"
      `Quick (fun () ->
        let c = Http.conn () in
        Http.feed c ("GET /" ^ String.make 20_000 'x' ^ " HTTP/1.1\r\n");
        match Http.next c with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "oversized header accepted");
    Alcotest.test_case "absurd content-length is rejected" `Quick (fun () ->
        let c = Http.conn () in
        Http.feed c "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        match Http.next c with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "absurd content-length accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

let tmp_path suffix =
  let path = Filename.temp_file "propane-service" suffix in
  Unix.unlink path;
  path

let manifest_tests =
  [
    Alcotest.test_case "submissions and transitions round-trip" `Quick
      (fun () ->
        let path = tmp_path ".manifest" in
        let m =
          match Manifest.append path with
          | Ok m -> m
          | Error msg -> Alcotest.fail msg
        in
        Manifest.submit m ~id:"c0001" ~body:"tabs\tand\nnewlines{}";
        Manifest.submit m ~id:"c0002" ~body:"{}";
        Manifest.transition m ~id:"c0001" Manifest.Running ~reason:"";
        Manifest.transition m ~id:"c0001" Manifest.Failed
          ~reason:"run 3 crashed\nbadly";
        Manifest.close m;
        (match Manifest.load path with
        | Error msg -> Alcotest.fail msg
        | Ok entries ->
            Alcotest.(check (list string))
              "ids in submission order" [ "c0001"; "c0002" ]
              (List.map (fun (e : Manifest.entry) -> e.id) entries);
            let e1 = List.hd entries in
            Alcotest.(check string) "body" "tabs\tand\nnewlines{}" e1.body;
            Alcotest.(check bool)
              "latest state wins" true
              (e1.state = Manifest.Failed);
            Alcotest.(check string) "reason" "run 3 crashed\nbadly" e1.reason;
            Alcotest.(check bool)
              "second still queued" true
              ((List.nth entries 1).state = Manifest.Queued));
        (* Reopening appends instead of truncating. *)
        (match Manifest.append path with
        | Ok m2 ->
            Manifest.transition m2 ~id:"c0002" Manifest.Done ~reason:"";
            Manifest.close m2
        | Error msg -> Alcotest.fail msg);
        (match Manifest.load path with
        | Ok entries ->
            Alcotest.(check bool)
              "post-reopen transition applied" true
              ((List.nth entries 1).state = Manifest.Done)
        | Error msg -> Alcotest.fail msg);
        Sys.remove path);
    Alcotest.test_case "torn trailing line is tolerated, torn middle is not"
      `Quick (fun () ->
        let path = tmp_path ".manifest" in
        let write s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        write
          "propane-service-manifest 1\ncampaign\tc0001\t{}\nstate\tc0001\tru";
        (match Manifest.load path with
        | Ok [ e ] ->
            Alcotest.(check bool) "still queued" true (e.state = Manifest.Queued)
        | Ok _ -> Alcotest.fail "wrong entry count"
        | Error msg -> Alcotest.fail msg);
        write
          "propane-service-manifest 1\ngarbage line\ncampaign\tc0001\t{}\n";
        (match Manifest.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "torn middle line accepted");
        write "not a manifest\n";
        (match Manifest.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bad magic accepted");
        Sys.remove path);
    Alcotest.test_case "duplicate ids and dangling states are corruption"
      `Quick (fun () ->
        let path = tmp_path ".manifest" in
        let write s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        write
          "propane-service-manifest 1\ncampaign\tc0001\t{}\ncampaign\tc0001\t{}\n";
        (match Manifest.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "duplicate id accepted");
        write "propane-service-manifest 1\nstate\tc0009\tdone\t\n";
        (match Manifest.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "state for unknown campaign accepted");
        Sys.remove path);
  ]

(* ------------------------------------------------------------------ *)
(* Integration fixtures: the scaler SUT from the cluster tests, two
   campaigns over it, and an in-process service + fleet.               *)

module Sim = Simkernel

let scaler_sut ?(slow = false) () =
  let instantiate _tc =
    let store =
      Propane.Signal_store.create ~signals:[ ("x", 16); ("y", 16) ] ()
    in
    let t = ref 0 in
    {
      Propane.Sut.read = Propane.Signal_store.peek store;
      write = Propane.Signal_store.poke store;
      inject = Propane.Signal_store.inject store;
      step =
        (fun () ->
          if slow then Unix.sleepf 2e-4;
          incr t;
          Propane.Signal_store.write store "x" (!t * 16);
          Propane.Signal_store.write store "y"
            (Propane.Signal_store.read store "x" lsr 4));
      finished = (fun () -> !t >= 100);
      snapshot = None;
    }
  in
  {
    Propane.Sut.name = "scaler";
    signals = [ ("x", 16); ("y", 16) ];
    digests = [ ("SCALE", "scale-v1") ];
    instantiate;
  }

let scale_model =
  Propagation.System_model.make_exn
    ~modules:
      [
        Propagation.Sw_module.make ~name:"SCALE"
          ~inputs:[ Propagation.Signal.make "x" ]
          ~outputs:[ Propagation.Signal.make "y" ];
      ]
    ~system_inputs:[ Propagation.Signal.make "x" ]
    ~system_outputs:[ Propagation.Signal.make "y" ]

(* Two distinct campaigns multiplexed over one fleet.  [slow] throttles
   the SUT so the test can observe (and kill) campaigns mid-flight. *)
let campaign_of_kind kind =
  let times =
    match kind with
    | "a" -> [ 10; 20; 30; 40; 50 ]
    | _ -> [ 15; 35; 55 ]
  in
  Propane.Campaign.make
    ~name:("scaler-" ^ kind)
    ~targets:[ "x" ]
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Sim.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let seed_of_kind = function "a" -> 11L | _ -> 22L

let recipe_of ~slow kind =
  Printf.sprintf "svc-test;kind=%s;slow=%b" kind slow

let parse_recipe r =
  match String.split_on_char ';' r with
  | [ "svc-test"; kind_f; slow_f ] -> (
      match
        ( String.split_on_char '=' kind_f,
          String.split_on_char '=' slow_f )
      with
      | [ "kind"; kind ], [ "slow"; slow ] ->
          Option.map (fun slow -> (kind, slow)) (bool_of_string_opt slow)
      | _ -> None)
  | _ -> None

(* The submission body: {"kind":"a","tenant":"t","weight":1,"slow":false}. *)
let submission ?(tenant = "default") ?(weight = 1) ?(slow = false) kind =
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.Str kind);
         ("tenant", Json.Str tenant);
         ("weight", Json.Num (float_of_int weight));
         ("slow", Json.Bool slow);
       ])

let parse_submission body =
  match Json.parse body with
  | Error msg -> Error msg
  | Ok json -> (
      let str name default =
        Option.value ~default (Option.bind (Json.member name json) Json.str)
      in
      match Option.bind (Json.member "kind" json) Json.str with
      | None -> Error "missing kind"
      | Some kind when kind <> "a" && kind <> "b" ->
          Error (Printf.sprintf "unknown kind %S" kind)
      | Some kind ->
          let slow =
            Option.value ~default:false
              (Option.bind (Json.member "slow" json) Json.bool)
          in
          let campaign = campaign_of_kind kind in
          let live =
            Propane.Live.create
              ~attribution:(Propane.Estimator.Direct { window_ms = 64 })
              ~model:scale_model ~targets:[ "x" ] ()
          in
          Ok
            {
              Service.tenant = str "tenant" "default";
              weight =
                Option.value ~default:1
                  (Option.bind (Json.member "weight" json) Json.int);
              name = campaign.Propane.Campaign.name;
              sut = "scaler";
              total = Propane.Campaign.size campaign;
              recipe = recipe_of ~slow kind;
              config =
                Propane.Runner.Config.make ~seed:(seed_of_kind kind) ~jobs:1
                  ();
              live = Some live;
              plan = None;
            })

(* The fleet worker's executor factory: rebuild from the wire recipe,
   exactly like [propane worker --fleet] does from a real recipe. *)
let worker_make (w : Cluster.Protocol.welcome) =
  match parse_recipe w.Cluster.Protocol.config with
  | None -> Error "unknown recipe"
  | Some (kind, slow) ->
      let campaign = campaign_of_kind kind in
      if Propane.Campaign.size campaign <> w.total then
        Error "campaign size mismatch"
      else
        Ok
          (Propane.Runner.executor ~seed:w.seed
             (scaler_sut ~slow ())
             campaign)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The solo reference: the journal a plain serial run of the same
   recipe writes.  The service's journals must match it byte for
   byte.  [recipe_slow] only changes the recipe string pinned into the
   journal header; the reference itself always runs the fast SUT —
   when compared against a slow-SUT service run it proves wall-clock
   timing never leaks into the bytes. *)
let solo_journal ?(recipe_slow = false) kind =
  let path = tmp_path ".journal" in
  let (_ : Propane.Results.t) =
    Propane.Runner.run
      ~config:
        (Propane.Runner.Config.make ~seed:(seed_of_kind kind) ~jobs:1
           ~journal:path ())
      ~recipe:(recipe_of ~slow:recipe_slow kind)
      (scaler_sut ()) (campaign_of_kind kind)
  in
  let bytes = read_file path in
  Sys.remove path;
  bytes

let fresh_state_dir () =
  let dir = Filename.temp_file "propane-service" ".state" in
  Unix.unlink dir;
  Unix.mkdir dir 0o755;
  dir

(* Runs [f http] against a live in-process service with [workers] fleet
   workers in their own domains.  [f] returns the stop verdict the
   service should see next ([`Drain] for a graceful end, [`Abort] to
   simulate a crash); the service's own result is returned. *)
let with_service ?(workers = 2) ?(queue_max = 16) ?(tenant_quota = 4)
    ~state_dir f =
  let listen = Cluster.Address.Unix_sock (Filename.concat state_dir "f.sock") in
  let http = Cluster.Address.Unix_sock (Filename.concat state_dir "h.sock") in
  let verdict = Atomic.make `Continue in
  let cfg =
    Service.config ~queue_max ~tenant_quota ~heartbeat_timeout_s:30.
      ~listen ~http ~state_dir ~parse:parse_submission ()
  in
  let daemon =
    Domain.spawn (fun () ->
        Service.run ~stop:(fun () -> Atomic.get verdict) cfg)
  in
  let fleet =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            match
              Cluster.Worker.join ~connect:listen ~make:worker_make ()
            with
            | r -> r
            | exception _ -> Error "worker died"))
  in
  let outcome =
    match f http with
    | v ->
        Atomic.set verdict v;
        Ok (Domain.join daemon)
    | exception e ->
        Atomic.set verdict `Abort;
        ignore (Domain.join daemon);
        List.iter (fun d -> ignore (Domain.join d)) fleet;
        raise e
  in
  List.iter (fun d -> ignore (Domain.join d)) fleet;
  match outcome with Ok r -> r | Error e -> raise e

let http_json ~addr ~meth ~path ?body () =
  match Http.request ?body ~addr ~meth ~path () with
  | Error msg -> Alcotest.failf "%s %s: %s" meth path msg
  | Ok (status, body) -> (
      match Json.parse body with
      | Ok json -> (status, json)
      | Error msg ->
          Alcotest.failf "%s %s: unparseable response %S: %s" meth path body
            msg)

let jstr name json =
  Option.value ~default:"" (Option.bind (Json.member name json) Json.str)

let jint name json =
  Option.value ~default:(-1) (Option.bind (Json.member name json) Json.int)

let rec wait_until ?(timeout = 60.) ?(what = "condition") f =
  if timeout <= 0. then Alcotest.failf "timed out waiting for %s" what
  else if not (f ()) then begin
    Unix.sleepf 0.05;
    wait_until ~timeout:(timeout -. 0.05) ~what f
  end

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let state_of ~addr id =
  let _, json = http_json ~addr ~meth:"GET" ~path:("/campaigns/" ^ id) () in
  jstr "state" json

let submit_ok ~addr body =
  let status, json =
    http_json ~addr ~meth:"POST" ~path:"/campaigns" ~body ()
  in
  Alcotest.(check int) "submit accepted" 201 status;
  jstr "id" json

(* ------------------------------------------------------------------ *)
(* Integration                                                         *)

let service_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:4
         ~name:"interleaved campaigns journal byte-identically to solo runs"
         QCheck2.Gen.(pair bool (int_range 1 3))
         (fun (b_first, workers) ->
           let solo_a = solo_journal "a" and solo_b = solo_journal "b" in
           let state_dir = fresh_state_dir () in
           let result =
             with_service ~workers ~state_dir (fun addr ->
                 let kinds = if b_first then [ "b"; "a" ] else [ "a"; "b" ] in
                 let ids =
                   List.map
                     (fun kind ->
                       ( submit_ok ~addr
                           (submission ~tenant:("tenant-" ^ kind) kind),
                         kind ))
                     kinds
                 in
                 wait_until ~what:"both campaigns done" (fun () ->
                     List.for_all
                       (fun (id, _) -> state_of ~addr id = "done")
                       ids);
                 (* Per-tenant accounting sticks to each campaign. *)
                 List.iter
                   (fun (id, kind) ->
                     let _, json =
                       http_json ~addr ~meth:"GET"
                         ~path:("/campaigns/" ^ id) ()
                     in
                     Alcotest.(check string)
                       "tenant" ("tenant-" ^ kind) (jstr "tenant" json);
                     Alcotest.(check int)
                       "completed = total"
                       (Propane.Campaign.size (campaign_of_kind kind))
                       (jint "completed" json))
                   ids;
                 List.iter
                   (fun (id, kind) ->
                     let solo = if kind = "a" then solo_a else solo_b in
                     let got =
                       read_file
                         (Filename.concat state_dir (id ^ ".journal"))
                     in
                     if got <> solo then
                       Alcotest.failf
                         "journal of %s (kind %s) differs from solo run" id
                         kind)
                   ids;
                 `Drain)
           in
           result = Ok ()));
    Alcotest.test_case "killed service resumes campaigns byte-identically"
      `Slow (fun () ->
        let solo_a = solo_journal ~recipe_slow:true "a" in
        let state_dir = fresh_state_dir () in
        (* Phase 1: crash mid-campaign.  The slow SUT keeps the campaign
           in flight long enough to observe progress, then the service
           aborts without flushing — exactly a SIGKILL's on-disk state. *)
        let crashed =
          with_service ~workers:2 ~state_dir (fun addr ->
              let id = submit_ok ~addr (submission ~slow:true "a") in
              Alcotest.(check string) "first id" "c0001" id;
              wait_until ~what:"some progress" (fun () ->
                  let _, json =
                    http_json ~addr ~meth:"GET" ~path:("/campaigns/" ^ id) ()
                  in
                  jint "completed" json > 0);
              `Abort)
        in
        Alcotest.(check bool) "service aborted" true (Result.is_error crashed);
        (* The journal on disk is a proper prefix: header plus however
           many records were flushed. *)
        let partial = read_file (Filename.concat state_dir "c0001.journal") in
        Alcotest.(check bool)
          "partial journal is shorter" true
          (String.length partial < String.length solo_a);
        (* Phase 2: a fresh service on the same state dir resumes from
           the manifest + journal and completes the campaign.  The slow
           recipe is part of the submission body it re-parses, but the
           records are identical to the fast solo run — outcomes depend
           on (seed, index) only. *)
        let resumed =
          with_service ~workers:2 ~state_dir (fun addr ->
              wait_until ~what:"resumed campaign done" (fun () ->
                  state_of ~addr "c0001" = "done");
              let _, json =
                http_json ~addr ~meth:"GET" ~path:"/campaigns/c0001" ()
              in
              (* Resume replayed the journalled prefix instead of
                 re-running it. *)
              Alcotest.(check bool) "skipped > 0" true (jint "completed" json > 0);
              `Drain)
        in
        Alcotest.(check bool) "clean second run" true (resumed = Ok ());
        (* Solo reference ran the fast SUT (same recipe string pinned);
           the service ran the slow one.  Identical journals prove
           timing never leaks into records. *)
        let final = read_file (Filename.concat state_dir "c0001.journal") in
        if final <> solo_a then
          Alcotest.fail "resumed journal differs from solo run";
        match Manifest.load (Filename.concat state_dir "manifest") with
        | Ok [ e ] ->
            Alcotest.(check bool) "manifest done" true (e.state = Manifest.Done)
        | Ok _ -> Alcotest.fail "manifest entry count"
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "backpressure rejections name the exhausted limit"
      `Quick (fun () ->
        let state_dir = fresh_state_dir () in
        let result =
          (* No workers: campaigns stay queued, so the queue fills
             deterministically. *)
          with_service ~workers:0 ~queue_max:2 ~tenant_quota:1 ~state_dir
            (fun addr ->
              let c1 = submit_ok ~addr (submission ~tenant:"alice" "a") in
              (* Tenant quota first. *)
              let status, json =
                http_json ~addr ~meth:"POST" ~path:"/campaigns"
                  ~body:(submission ~tenant:"alice" "b") ()
              in
              Alcotest.(check int) "quota rejection" 429 status;
              let err = jstr "error" json in
              Alcotest.(check bool)
                (Printf.sprintf "quota reason names tenant: %s" err)
                true
                (contains ~needle:"alice" err && contains ~needle:"quota" err);
              (* Then the global queue. *)
              let _ = submit_ok ~addr (submission ~tenant:"bob" "b") in
              let status, json =
                http_json ~addr ~meth:"POST" ~path:"/campaigns"
                  ~body:(submission ~tenant:"carol" "a") ()
              in
              Alcotest.(check int) "queue rejection" 429 status;
              Alcotest.(check bool)
                "queue reason names the limit" true
                (contains ~needle:"queue full" (jstr "error" json));
              (* Parse failures are the client's fault, not capacity. *)
              let status, _ =
                http_json ~addr ~meth:"POST" ~path:"/campaigns"
                  ~body:{|{"kind":"zebra"}|} ()
              in
              Alcotest.(check int) "bad submission" 400 status;
              (* Cancelling frees the slot. *)
              let status, _ =
                http_json ~addr ~meth:"DELETE" ~path:("/campaigns/" ^ c1) ()
              in
              Alcotest.(check bool)
                "cancel accepted" true
                (status = 200 || status = 202);
              wait_until ~what:"cancelled" (fun () ->
                  state_of ~addr c1 = "cancelled");
              let id = submit_ok ~addr (submission ~tenant:"carol" "a") in
              Alcotest.(check bool) "slot freed" true (id <> "");
              (* Unknown ids are 404s. *)
              let status, _ =
                http_json ~addr ~meth:"GET" ~path:"/campaigns/c9999" ()
              in
              Alcotest.(check int) "unknown id" 404 status;
              `Drain)
        in
        Alcotest.(check bool) "clean shutdown" true (result = Ok ()));
    Alcotest.test_case "fleet and status surfaces live telemetry" `Slow
      (fun () ->
        let state_dir = fresh_state_dir () in
        let result =
          with_service ~workers:2 ~state_dir (fun addr ->
              wait_until ~what:"fleet joined" (fun () ->
                  let _, json = http_json ~addr ~meth:"GET" ~path:"/fleet" () in
                  jint "count" json = 2);
              let id = submit_ok ~addr (submission ~slow:true "b") in
              (* While in flight: telemetry and rankings are served. *)
              wait_until ~what:"in-flight progress" (fun () ->
                  let _, json =
                    http_json ~addr ~meth:"GET" ~path:("/campaigns/" ^ id) ()
                  in
                  jint "completed" json > 0
                  && jint "completed" json < jint "total" json);
              let _, json =
                http_json ~addr ~meth:"GET" ~path:("/campaigns/" ^ id) ()
              in
              Alcotest.(check bool)
                "telemetry present" true
                (Json.member "telemetry" json <> None);
              (match Json.member "rankings" json with
              | Some (Json.List (row :: _)) ->
                  Alcotest.(check string) "module" "SCALE" (jstr "module" row);
                  let est =
                    Option.value ~default:Json.Null
                      (Json.member "relative_permeability" row)
                  in
                  let v name =
                    Option.value ~default:Float.nan
                      (Option.bind (Json.member name est) Json.num)
                  in
                  Alcotest.(check bool)
                    "wilson interval brackets the estimate" true
                    (v "lo" <= v "value" && v "value" <= v "hi")
              | _ ->
                  (* Early polls may precede the first snapshot; the
                     campaign has progressed, so rankings must exist. *)
                  Alcotest.fail "no rankings while in flight");
              wait_until ~what:"done" (fun () -> state_of ~addr id = "done");
              let _, fleet = http_json ~addr ~meth:"GET" ~path:"/fleet" () in
              let completed =
                match
                  Option.bind (Json.member "workers" fleet) Json.list
                with
                | Some ws -> List.fold_left (fun n w -> n + jint "completed" w) 0 ws
                | None -> -1
              in
              Alcotest.(check int)
                "fleet executed every run"
                (Propane.Campaign.size (campaign_of_kind "b"))
                completed;
              `Drain)
        in
        Alcotest.(check bool) "clean shutdown" true (result = Ok ()));
  ]

let () =
  Alcotest.run "service"
    [
      ("json", json_tests);
      ("http", http_tests);
      ("manifest", manifest_tests);
      ("service", service_tests);
    ]
