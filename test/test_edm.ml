(* Tests for the EDM/ERM library: assertions, detectors, recovery
   wrappers, coverage assessment and placement proposals. *)

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

(* ------------------------------------------------------------------ *)

let assertion_tests =
  let check_a a ~prev v = Edm.Assertion.check a ~prev v in
  [
    Alcotest.test_case "range accepts the bounds" `Quick (fun () ->
        let a = Edm.Assertion.Range { lo = 0; hi = 10 } in
        Alcotest.(check bool) "lo" true (check_a a ~prev:None 0);
        Alcotest.(check bool) "hi" true (check_a a ~prev:None 10);
        Alcotest.(check bool) "below" false (check_a a ~prev:None (-1));
        Alcotest.(check bool) "above" false (check_a a ~prev:None 11));
    Alcotest.test_case "max rate compares to the previous sample" `Quick
      (fun () ->
        let a = Edm.Assertion.Max_rate { per_sample = 5 } in
        Alcotest.(check bool) "first" true (check_a a ~prev:None 1000);
        Alcotest.(check bool) "small step" true (check_a a ~prev:(Some 10) 15);
        Alcotest.(check bool) "big step" false (check_a a ~prev:(Some 10) 16);
        Alcotest.(check bool)
          "negative step" false
          (check_a a ~prev:(Some 10) 4));
    Alcotest.test_case "boolean accepts exactly 0 and 1" `Quick (fun () ->
        let a = Edm.Assertion.Boolean in
        Alcotest.(check bool) "zero" true (check_a a ~prev:None 0);
        Alcotest.(check bool) "one" true (check_a a ~prev:None 1);
        Alcotest.(check bool) "two" false (check_a a ~prev:None 2));
    Alcotest.test_case "non-decreasing tracks the previous sample" `Quick
      (fun () ->
        let a = Edm.Assertion.Non_decreasing in
        Alcotest.(check bool) "first" true (check_a a ~prev:None 5);
        Alcotest.(check bool) "same" true (check_a a ~prev:(Some 5) 5);
        Alcotest.(check bool) "up" true (check_a a ~prev:(Some 5) 6);
        Alcotest.(check bool) "down" false (check_a a ~prev:(Some 5) 4));
    Alcotest.test_case "describe covers every constructor" `Quick (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool)
              "non-empty" true
              (String.length (Edm.Assertion.describe a) > 0))
          [
            Edm.Assertion.Range { lo = 0; hi = 1 };
            Edm.Assertion.Max_rate { per_sample = 1 };
            Edm.Assertion.Boolean;
            Edm.Assertion.Non_decreasing;
          ]);
  ]

(* ------------------------------------------------------------------ *)

let detector_tests =
  let trace values = Propane.Trace.of_list ~signal:"s" values in
  let detector assertions =
    Edm.Detector.make ~name:"d" ~signal:"s" assertions
  in
  [
    Alcotest.test_case "clean trace never fires" `Quick (fun () ->
        let d = detector [ Edm.Assertion.Range { lo = 0; hi = 100 } ] in
        let v = Edm.Detector.evaluate d (trace [ 1; 2; 3 ]) in
        Alcotest.(check bool) "fired" false v.Edm.Detector.fired);
    Alcotest.test_case "first violation is located" `Quick (fun () ->
        let d = detector [ Edm.Assertion.Range { lo = 0; hi = 10 } ] in
        let v = Edm.Detector.evaluate d (trace [ 1; 2; 99; 3; 99 ]) in
        Alcotest.(check bool) "fired" true v.Edm.Detector.fired;
        Alcotest.(check (option int)) "at" (Some 2) v.Edm.Detector.first_ms);
    Alcotest.test_case "assertions are a conjunction" `Quick (fun () ->
        let d =
          detector
            [
              Edm.Assertion.Range { lo = 0; hi = 1000 };
              Edm.Assertion.Max_rate { per_sample = 2 };
            ]
        in
        let v = Edm.Detector.evaluate d (trace [ 1; 2; 500 ]) in
        Alcotest.(check (option int)) "rate trips" (Some 2) v.Edm.Detector.first_ms);
    Alcotest.test_case "rate check uses consecutive samples" `Quick (fun () ->
        let d = detector [ Edm.Assertion.Max_rate { per_sample = 10 } ] in
        let v = Edm.Detector.evaluate d (trace [ 0; 10; 20; 35 ]) in
        Alcotest.(check (option int)) "at" (Some 3) v.Edm.Detector.first_ms);
    check_raises_invalid "wrong signal rejected" (fun () ->
        Edm.Detector.evaluate
          (detector [ Edm.Assertion.Boolean ])
          (Propane.Trace.of_list ~signal:"other" [ 0 ]));
    check_raises_invalid "empty assertion list rejected" (fun () ->
        Edm.Detector.make ~name:"d" ~signal:"s" []);
    Alcotest.test_case "empty trace never fires" `Quick (fun () ->
        let d = detector [ Edm.Assertion.Boolean ] in
        let v = Edm.Detector.evaluate d (trace []) in
        Alcotest.(check bool) "fired" false v.Edm.Detector.fired);
  ]

(* ------------------------------------------------------------------ *)

let recovery_tests =
  [
    Alcotest.test_case "clamp saturates" `Quick (fun () ->
        let g = Edm.Recovery.make_guard (Edm.Recovery.Clamp { lo = 0; hi = 10 }) () in
        Alcotest.(check int) "low" 0 (g (-5));
        Alcotest.(check int) "pass" 7 (g 7);
        Alcotest.(check int) "high" 10 (g 99));
    Alcotest.test_case "hold-last replaces implausible values" `Quick
      (fun () ->
        let g =
          Edm.Recovery.make_guard
            (Edm.Recovery.Hold_last_if (Edm.Assertion.Max_rate { per_sample = 5 }))
            ()
        in
        Alcotest.(check int) "first accepted" 100 (g 100);
        Alcotest.(check int) "step accepted" 103 (g 103);
        Alcotest.(check int) "spike held" 103 (g 500);
        Alcotest.(check int) "recovers" 105 (g 105));
    Alcotest.test_case "hold-last yields 0 before any accepted write" `Quick
      (fun () ->
        let g =
          Edm.Recovery.make_guard
            (Edm.Recovery.Hold_last_if (Edm.Assertion.Range { lo = 0; hi = 5 }))
            ()
        in
        Alcotest.(check int) "default" 0 (g 100));
    Alcotest.test_case "guards from one recovery are independent" `Quick
      (fun () ->
        let r =
          Edm.Recovery.Hold_last_if (Edm.Assertion.Max_rate { per_sample = 1 })
        in
        let g1 = Edm.Recovery.make_guard r () in
        let g2 = Edm.Recovery.make_guard r () in
        ignore (g1 100);
        Alcotest.(check int) "fresh state" 50 (g2 50));
    Alcotest.test_case "forward is the identity" `Quick (fun () ->
        let g = Edm.Recovery.make_guard Edm.Recovery.Forward () in
        Alcotest.(check int) "id" 1234 (g 1234));
  ]

(* ------------------------------------------------------------------ *)
(* Coverage on a miniature SUT: SCALE computes y = x >> 4 and a
   detector on y with a tight range triggers on high-bit corruption. *)

let scaler_sut () =
  let instantiate _tc =
    let store =
      Propane.Signal_store.create ~signals:[ ("x", 16); ("y", 16) ] ()
    in
    let t = ref 0 in
    {
      Propane.Sut.read = Propane.Signal_store.peek store;
      write = Propane.Signal_store.poke store;
      inject = Propane.Signal_store.inject store;
      step =
        (fun () ->
          incr t;
          Propane.Signal_store.write store "x" (!t * 16);
          Propane.Signal_store.write store "y"
            (Propane.Signal_store.read store "x" lsr 4));
      finished = (fun () -> !t >= 100);
      snapshot = None;
    }
  in
  {
    Propane.Sut.name = "scaler";
    signals = [ ("x", 16); ("y", 16) ];
    digests = [];
    instantiate;
  }

let scaler_campaign =
  Propane.Campaign.make ~name:"edm" ~targets:[ "x" ]
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:[ Simkernel.Sim_time.of_ms 10 ]
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let coverage_tests =
  [
    Alcotest.test_case "y-rate detector catches high-bit flips" `Quick
      (fun () ->
        (* In the golden run y advances by exactly 1 per ms; any flip of
           x's bits 4..15 makes y jump. *)
        let detector =
          Edm.Detector.make ~name:"y-rate" ~signal:"y"
            [ Edm.Assertion.Max_rate { per_sample = 1 } ]
        in
        match
          Edm.Coverage.assess ~outputs:[ "y" ] ~detectors:[ detector ]
            (scaler_sut ()) scaler_campaign
        with
        | [ r ] ->
            Alcotest.(check bool)
              "no golden false alarm" false r.Edm.Coverage.golden_false_alarm;
            Alcotest.(check int) "runs" 16 r.Edm.Coverage.runs;
            (* 12 of 16 flips reach y (and therefore the output). *)
            Alcotest.(check int) "output failures" 12
              r.Edm.Coverage.output_failures;
            (* Two down-flips first move y by only one step and are
               caught a millisecond after the output diverged. *)
            Alcotest.(check int) "timely" 10
              r.Edm.Coverage.timely_output_detections;
            Alcotest.(check (float 1e-9))
              "usefulness" (10.0 /. 12.0) (Edm.Coverage.usefulness r);
            Alcotest.(check int) "false alarms" 0 r.Edm.Coverage.false_alarms
        | other -> Alcotest.failf "expected 1 report, got %d" (List.length other));
    Alcotest.test_case "a detector on an untouched signal reports nothing"
      `Quick (fun () ->
        let detector =
          Edm.Detector.make ~name:"x-bool" ~signal:"y"
            [ Edm.Assertion.Range { lo = 0; hi = 65_535 } ]
        in
        match
          Edm.Coverage.assess ~outputs:[ "y" ] ~detectors:[ detector ]
            (scaler_sut ()) scaler_campaign
        with
        | [ r ] ->
            Alcotest.(check int) "fired" 0 r.Edm.Coverage.fired;
            Alcotest.(check (float 1e-9))
              "coverage" 0.0
              (Edm.Coverage.detection_coverage r)
        | _ -> Alcotest.fail "expected 1 report");
    Alcotest.test_case "latency is measured from the injection" `Quick
      (fun () ->
        let detector =
          Edm.Detector.make ~name:"y-rate" ~signal:"y"
            [ Edm.Assertion.Max_rate { per_sample = 1 } ]
        in
        match
          Edm.Coverage.assess ~outputs:[ "y" ] ~detectors:[ detector ]
            (scaler_sut ()) scaler_campaign
        with
        | [ r ] -> (
            match r.Edm.Coverage.mean_latency_ms with
            | Some l -> Alcotest.(check bool) "small" true (l >= 0.0 && l < 5.0)
            | None -> Alcotest.fail "expected a latency")
        | _ -> Alcotest.fail "expected 1 report");
  ]

(* ------------------------------------------------------------------ *)

let selector_tests =
  let placement () =
    let analysis =
      Propagation.Analysis.run_exn Arrestment.Model.system
        (Arrestment.Model.paper_matrices ())
    in
    analysis.Propagation.Analysis.placement
  in
  [
    Alcotest.test_case "budgets bound the proposals" `Quick (fun () ->
        let plan = Edm.Selector.propose ~edm_budget:2 ~erm_budget:2 (placement ()) in
        Alcotest.(check int) "edm" 2 (List.length plan.Edm.Selector.edm_locations));
    Alcotest.test_case "top EDM location is the most exposed signal" `Quick
      (fun () ->
        let plan = Edm.Selector.propose (placement ()) in
        match plan.Edm.Selector.edm_locations with
        | top :: _ ->
            Alcotest.(check string) "signal" "SetValue" top.Edm.Selector.subject
        | [] -> Alcotest.fail "no proposals");
    Alcotest.test_case "cut signals lead the ERM list (OB5)" `Quick (fun () ->
        let plan = Edm.Selector.propose (placement ()) in
        match plan.Edm.Selector.erm_locations with
        | top :: _ ->
            Alcotest.(check bool)
              "a cut signal" true
              (List.mem top.Edm.Selector.subject [ "SetValue"; "OutValue" ])
        | [] -> Alcotest.fail "no proposals");
    Alcotest.test_case "barrier modules are always proposed (OB6)" `Quick
      (fun () ->
        let plan = Edm.Selector.propose ~erm_budget:1 (placement ()) in
        let subjects =
          List.map (fun p -> p.Edm.Selector.subject) plan.Edm.Selector.erm_locations
        in
        Alcotest.(check bool) "DIST_S" true (List.mem "DIST_S" subjects);
        Alcotest.(check bool) "PRES_S" true (List.mem "PRES_S" subjects));
    Alcotest.test_case "exclusions become notes (OB4)" `Quick (fun () ->
        let plan = Edm.Selector.propose (placement ()) in
        Alcotest.(check bool)
          "mentions TOC2" true
          (List.exists
             (fun note ->
               let nh = String.length note in
               let rec go i =
                 if i + 4 > nh then false
                 else if String.equal (String.sub note i 4) "TOC2" then true
                 else go (i + 1)
               in
               go 0)
             plan.Edm.Selector.notes));
  ]

let () =
  Alcotest.run "edm"
    [
      ("assertion", assertion_tests);
      ("detector", detector_tests);
      ("recovery", recovery_tests);
      ("coverage", coverage_tests);
      ("selector", selector_tests);
    ]
