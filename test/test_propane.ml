(* Tests for the PROPANE fault-injection substrate.

   The campaign/estimator tests use a tiny synthetic system under test
   with analytically known permeability: module SCALE computes
   y = x >> 4 every millisecond, so exactly the 4 low bits of x are
   invisible and the true permeability of the (x, y) pair under the
   16-bit-flip model is 12/16 = 0.75. *)

module Sim = Simkernel

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let close = Alcotest.(check (float 1e-9))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

(* All runner invocations below go through the {!Propane.Runner.Config}
   API; this shim keeps the flat labels the test bodies were written
   with while exercising exactly the packaged-config entry point. *)
let runner ?max_ms ?seed ?truncate_after_ms ?run_timeout_ms ?retries
    ?fail_fast ?jobs ?journal ?resume ?journal_batch ?keep_traces ?stop_when
    ?on_event ?on_run_traces ?live sut campaign =
  let config =
    Propane.Runner.Config.make ?max_ms ?seed ?truncate_after_ms
      ?run_timeout_ms ?retries ?fail_fast ?jobs ?journal ?resume
      ?journal_batch ?keep_traces ?stop_when ()
  in
  Propane.Runner.run ~config ?on_event ?on_run_traces ?live sut campaign

(* ------------------------------------------------------------------ *)

let error_model_tests =
  let rng () = Sim.Rng.create 1L in
  [
    Alcotest.test_case "bit flip toggles one bit" `Quick (fun () ->
        Alcotest.(check int)
          "flipped" 0b1001
          (Propane.Error_model.apply (Propane.Error_model.Bit_flip 3)
             ~width:16 ~rng:(rng ()) 0b0001));
    Alcotest.test_case "bit flip is an involution" `Quick (fun () ->
        let flip v =
          Propane.Error_model.apply (Propane.Error_model.Bit_flip 7) ~width:16
            ~rng:(rng ()) v
        in
        Alcotest.(check int) "id" 12345 (flip (flip 12345)));
    Alcotest.test_case "stuck-at replaces and truncates" `Quick (fun () ->
        Alcotest.(check int)
          "value" 0xFF
          (Propane.Error_model.apply
             (Propane.Error_model.Stuck_at 0x1FF)
             ~width:8 ~rng:(rng ()) 3));
    Alcotest.test_case "offset wraps at width" `Quick (fun () ->
        Alcotest.(check int)
          "value" 1
          (Propane.Error_model.apply (Propane.Error_model.Offset 2) ~width:16
             ~rng:(rng ()) 0xFFFF));
    Alcotest.test_case "negative offset wraps" `Quick (fun () ->
        Alcotest.(check int)
          "value" 0xFFFF
          (Propane.Error_model.apply
             (Propane.Error_model.Offset (-1))
             ~width:16 ~rng:(rng ()) 0));
    Alcotest.test_case "uniform replacement stays in range" `Quick (fun () ->
        let rng = rng () in
        for _ = 1 to 100 do
          let v =
            Propane.Error_model.apply Propane.Error_model.Replace_uniform
              ~width:8 ~rng 0
          in
          Alcotest.(check bool) "range" true (0 <= v && v <= 255)
        done);
    Alcotest.test_case "bit_flips covers every position once" `Quick (fun () ->
        let flips = Propane.Error_model.bit_flips ~width:16 in
        Alcotest.(check int) "count" 16 (List.length flips);
        List.iteri
          (fun idx e ->
            Alcotest.(check bool)
              "position" true
              (Propane.Error_model.equal e (Propane.Error_model.Bit_flip idx)))
          flips);
    check_raises_invalid "flip outside width rejected" (fun () ->
        Propane.Error_model.apply (Propane.Error_model.Bit_flip 16) ~width:16
          ~rng:(rng ()) 0);
    check_raises_invalid "bad width rejected" (fun () ->
        Propane.Error_model.apply (Propane.Error_model.Stuck_at 0) ~width:0
          ~rng:(rng ()) 0);
    Alcotest.test_case "describe is informative" `Quick (fun () ->
        Alcotest.(check string)
          "bit flip" "bit-flip@5"
          (Propane.Error_model.describe (Propane.Error_model.Bit_flip 5)));
  ]

(* ------------------------------------------------------------------ *)
(* Properties across the full error-model taxonomy.  Every generated
   model is valid at [em_width]; canonicalization must preserve both
   behaviour and RNG consumption exactly, or cache keys and journal
   replay split on spelling differences. *)

module EM = Propane.Error_model

let em_width = 16
let em_mask = (1 lsl em_width) - 1

let gen_spatial_model =
  QCheck2.Gen.(
    oneof
      [
        map (fun b -> EM.Bit_flip b) (int_range 0 (em_width - 1));
        map
          (fun bits -> EM.Multi_bit (List.sort_uniq Int.compare bits))
          (list_size (int_range 1 6) (int_range 0 (em_width - 1)));
        map2
          (fun first len ->
            EM.Burst { first; len = min len (em_width - first) })
          (int_range 0 (em_width - 1))
          (int_range 1 em_width);
        map (fun c -> EM.Stuck_at c) (int_range (-200_000) 200_000);
        map (fun d -> EM.Offset d) (int_range (-200_000) 200_000);
        map (fun a -> EM.Noise a) (int_range 1 em_mask);
        pure EM.Replace_uniform;
      ])

let gen_error_model =
  QCheck2.Gen.(
    frequency
      [
        (3, gen_spatial_model);
        ( 1,
          map2
            (fun model delay_ms -> EM.Delayed { model; delay_ms })
            gen_spatial_model (int_range 0 100) );
        ( 1,
          map3
            (fun model period_ms window_ms ->
              EM.Intermittent { model; period_ms; window_ms })
            gen_spatial_model (int_range 1 20) (int_range 1 100) );
      ])

let error_model_property_tests =
  let apply_seeded e seed v =
    EM.apply e ~width:em_width ~rng:(Sim.Rng.create seed) v
  in
  let gen_seed = QCheck2.Gen.(map Int64.of_int int) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"every generated model validates"
         gen_error_model (fun e ->
           match EM.validate ~width:em_width e with
           | Ok () -> true
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"apply truncates to width for all models"
         QCheck2.Gen.(tup3 gen_error_model gen_seed (int_range 0 em_mask))
         (fun (e, seed, v) ->
           let r = apply_seeded e seed v in
           0 <= r && r <= em_mask));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"canonicalize agrees with the original on every stream"
         QCheck2.Gen.(tup3 gen_error_model gen_seed (int_range 0 em_mask))
         (fun (e, seed, v) ->
           apply_seeded (EM.canonicalize ~width:em_width e) seed v
           = apply_seeded e seed v));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"canonicalize is idempotent"
         gen_error_model (fun e ->
           let c = EM.canonicalize ~width:em_width e in
           EM.equal c (EM.canonicalize ~width:em_width c)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:"congruent stuck-at/offset constants share one description"
         QCheck2.Gen.(tup2 (int_range (-3) 3) (int_range 0 em_mask))
         (fun (k, c) ->
           let d e = EM.describe (EM.canonicalize ~width:em_width e) in
           let shifted = c + (k * (em_mask + 1)) in
           String.equal (d (EM.Stuck_at c)) (d (EM.Stuck_at shifted))
           && String.equal (d (EM.Offset c)) (d (EM.Offset shifted))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:"multi-bit singleton is the bit flip"
         QCheck2.Gen.(tup2 (int_range 0 (em_width - 1)) (int_range 0 em_mask))
         (fun (b, v) ->
           apply_seeded (EM.Multi_bit [ b ]) 1L v
           = apply_seeded (EM.Bit_flip b) 1L v
           && EM.equal
                (EM.canonicalize ~width:em_width (EM.Multi_bit [ b ]))
                (EM.Bit_flip b)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:"burst equals the multi-bit over its range"
         QCheck2.Gen.(
           tup3
             (int_range 0 (em_width - 1))
             (int_range 1 em_width) (int_range 0 em_mask))
         (fun (first, len, v) ->
           let len = min len (em_width - first) in
           apply_seeded (EM.Burst { first; len }) 1L v
           = apply_seeded
               (EM.Multi_bit (List.init len (fun i -> first + i)))
               1L v));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"replace-uniform and noise always corrupt"
         QCheck2.Gen.(tup2 gen_seed (int_range 0 em_mask))
         (fun (seed, v) ->
           apply_seeded EM.Replace_uniform seed v <> v
           && apply_seeded (EM.Noise 3) seed v <> v
           && apply_seeded (EM.Noise em_mask) seed v <> v));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"fires holds exactly within [first_fire, last_fire]"
         QCheck2.Gen.(tup2 gen_error_model (int_range 0 100))
         (fun (e, inject_ms) ->
           let first = EM.first_fire_ms e ~inject_ms in
           let last = EM.last_fire_ms e ~inject_ms in
           EM.fires e ~inject_ms ~ms:first
           && EM.fires e ~inject_ms ~ms:last
           && first <= last
           &&
           let ok = ref true in
           for ms = 0 to last + 50 do
             if EM.fires e ~inject_ms ~ms && (ms < first || ms > last) then
               ok := false
           done;
           !ok));
    Alcotest.test_case "temporal nesting is rejected" `Quick (fun () ->
        match
          EM.validate ~width:16
            (EM.Delayed
               {
                 model =
                   EM.Intermittent
                     { model = EM.Bit_flip 0; period_ms = 1; window_ms = 2 };
                 delay_ms = 1;
               })
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "nested temporal accepted");
    Alcotest.test_case "describe covers the taxonomy" `Quick (fun () ->
        List.iter
          (fun (e, expect) ->
            Alcotest.(check string) expect expect (EM.describe e))
          [
            (EM.Multi_bit [ 3; 5 ], "multi-bit@3+5");
            (EM.Burst { first = 2; len = 3 }, "burst@2..4");
            (EM.Noise 4, "noise -4..+4");
            ( EM.Intermittent
                { model = EM.Bit_flip 1; period_ms = 4; window_ms = 16 },
              "bit-flip@1 every 4ms for 16ms" );
            ( EM.Delayed { model = EM.Replace_uniform; delay_ms = 8 },
              "replace-uniform after 8ms" );
          ]);
    Alcotest.test_case "roster grammar round-trips through validate" `Quick
      (fun () ->
        List.iter
          (fun spec ->
            match EM.roster_of_string ~width:16 spec with
            | Error msg -> Alcotest.failf "%s: %s" spec msg
            | Ok models ->
                Alcotest.(check bool)
                  (spec ^ " non-empty") true
                  (models <> []);
                List.iter
                  (fun m ->
                    match EM.validate ~width:16 m with
                    | Ok () -> ()
                    | Error msg -> Alcotest.failf "%s: %s" spec msg)
                  models)
          [
            "single-bit"; "multi-bit:2"; "multi-bit:3"; "burst:4"; "stuck-at";
            "stuck-at:7"; "offset:64"; "noise:16"; "uniform"; "delayed:8";
            "delayed:8:burst:2"; "intermittent:4:16";
            "intermittent:4:16:stuck-at";
          ]);
    Alcotest.test_case "roster grammar rejects nonsense" `Quick (fun () ->
        List.iter
          (fun spec ->
            match EM.roster_of_string ~width:16 spec with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" spec)
          [
            ""; "bogus"; "multi-bit:0"; "multi-bit:17"; "burst:0"; "burst:17";
            "offset:0"; "offset:65536"; "noise:0"; "delayed:-1";
            "intermittent:0:16"; "delayed:4:delayed:4";
            "intermittent:4:16:intermittent:4:16";
          ]);
  ]

(* ------------------------------------------------------------------ *)

let trace_tests =
  let t values = Propane.Trace.of_list ~signal:"x" values in
  [
    Alcotest.test_case "push/get/length" `Quick (fun () ->
        let tr = Propane.Trace.create ~signal:"x" () in
        Propane.Trace.push tr 1;
        Propane.Trace.push tr 2;
        Alcotest.(check int) "len" 2 (Propane.Trace.length tr);
        Alcotest.(check int) "get" 2 (Propane.Trace.get tr 1));
    Alcotest.test_case "growth beyond initial capacity" `Quick (fun () ->
        let tr = Propane.Trace.create ~capacity:4 ~signal:"x" () in
        for j = 0 to 999 do
          Propane.Trace.push tr j
        done;
        Alcotest.(check int) "len" 1000 (Propane.Trace.length tr);
        Alcotest.(check int) "last" 999 (Propane.Trace.get tr 999));
    check_raises_invalid "get out of range" (fun () ->
        Propane.Trace.get (t [ 1 ]) 1);
    Alcotest.test_case "first_difference finds earliest" `Quick (fun () ->
        Alcotest.(check (option int))
          "diff" (Some 2)
          (Propane.Trace.first_difference (t [ 1; 2; 3; 4 ]) (t [ 1; 2; 9; 4 ])));
    Alcotest.test_case "identical traces never differ" `Quick (fun () ->
        Alcotest.(check (option int))
          "none" None
          (Propane.Trace.first_difference (t [ 1; 2; 3 ]) (t [ 1; 2; 3 ])));
    Alcotest.test_case "from_ms skips early differences" `Quick (fun () ->
        Alcotest.(check (option int))
          "late only" (Some 3)
          (Propane.Trace.first_difference ~from_ms:2 (t [ 0; 1; 2; 3 ])
             (t [ 9; 1; 2; 9 ])));
    Alcotest.test_case "length mismatch is a divergence" `Quick (fun () ->
        Alcotest.(check (option int))
          "at end of shorter" (Some 2)
          (Propane.Trace.first_difference (t [ 1; 2; 3 ]) (t [ 1; 2 ])));
    Alcotest.test_case "until_ms bounds the comparison" `Quick (fun () ->
        Alcotest.(check (option int))
          "ignored" None
          (Propane.Trace.first_difference ~until_ms:2 (t [ 1; 2; 3 ])
             (t [ 1; 2; 9 ])));
    Alcotest.test_case "until_ms ignores a shorter run" `Quick (fun () ->
        Alcotest.(check (option int))
          "ignored" None
          (Propane.Trace.first_difference ~until_ms:2 (t [ 1; 2; 3; 4 ])
             (t [ 1; 2 ])));
    check_raises_invalid "different signals rejected" (fun () ->
        Propane.Trace.first_difference
          (Propane.Trace.of_list ~signal:"x" [ 1 ])
          (Propane.Trace.of_list ~signal:"y" [ 1 ]));
    Alcotest.test_case "of_list/to_list roundtrip" `Quick (fun () ->
        Alcotest.(check (list int))
          "roundtrip" [ 5; 6; 7 ]
          (Propane.Trace.to_list (t [ 5; 6; 7 ])));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"equal traces have no first difference"
         ~count:200
         QCheck2.Gen.(small_list (int_range 0 1000))
         (fun values ->
           Propane.Trace.first_difference (t values) (t values) = None));
    Alcotest.test_case "pp shows a short trace in full" `Quick (fun () ->
        Alcotest.(check string)
          "short" "x[3]: 1 2 3"
          (Fmt.str "%a" Propane.Trace.pp (t [ 1; 2; 3 ])));
    Alcotest.test_case "pp elides past 16 samples" `Quick (fun () ->
        Alcotest.(check string)
          "elided" "x[20]: 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 ..."
          (Fmt.str "%a" Propane.Trace.pp (t (List.init 20 Fun.id))));
    Alcotest.test_case "pp of an empty trace" `Quick (fun () ->
        Alcotest.(check string)
          "empty" "x[0]: "
          (Fmt.str "%a" Propane.Trace.pp (t [])));
    Alcotest.test_case "blit_into copies at the offset" `Quick (fun () ->
        let dst = Array.make 5 9 in
        Propane.Trace.blit_into (t [ 1; 2; 3 ]) dst ~pos:1;
        Alcotest.(check (array int)) "copied" [| 9; 1; 2; 3; 9 |] dst);
    check_raises_invalid "blit_into rejects an overflow" (fun () ->
        Propane.Trace.blit_into (t [ 1; 2; 3 ]) (Array.make 3 0) ~pos:1);
  ]

(* ------------------------------------------------------------------ *)

let trace_set_tests =
  [
    Alcotest.test_case "synchronized sampling" `Quick (fun () ->
        let set = Propane.Trace_set.create ~signals:[ "a"; "b" ] () in
        Propane.Trace_set.sample set (function "a" -> 1 | _ -> 2);
        Propane.Trace_set.sample set (function "a" -> 3 | _ -> 4);
        Alcotest.(check int) "duration" 2 (Propane.Trace_set.duration_ms set);
        Alcotest.(check (list int))
          "a" [ 1; 3 ]
          (Propane.Trace.to_list (Propane.Trace_set.trace set "a"));
        Alcotest.(check (list int))
          "b" [ 2; 4 ]
          (Propane.Trace.to_list (Propane.Trace_set.trace set "b")));
    check_raises_invalid "duplicate signals rejected" (fun () ->
        Propane.Trace_set.create ~signals:[ "a"; "a" ] ());
    check_raises_invalid "empty signal list rejected" (fun () ->
        Propane.Trace_set.create ~signals:[] ());
    Alcotest.test_case "find_trace distinguishes unknown" `Quick (fun () ->
        let set = Propane.Trace_set.create ~signals:[ "a" ] () in
        Alcotest.(check bool)
          "known" true
          (Propane.Trace_set.find_trace set "a" <> None);
        Alcotest.(check bool)
          "unknown" true
          (Propane.Trace_set.find_trace set "zz" = None));
    Alcotest.test_case "sample_array appends in signal order" `Quick (fun () ->
        let set = Propane.Trace_set.create ~signals:[ "a"; "b" ] () in
        Propane.Trace_set.sample_array set [| 1; 2 |];
        Propane.Trace_set.sample_array set [| 3; 4 |];
        Alcotest.(check int) "duration" 2 (Propane.Trace_set.duration_ms set);
        Alcotest.(check (list int))
          "a" [ 1; 3 ]
          (Propane.Trace.to_list (Propane.Trace_set.trace set "a"));
        Alcotest.(check (list int))
          "b" [ 2; 4 ]
          (Propane.Trace.to_list (Propane.Trace_set.trace set "b")));
    check_raises_invalid "sample_array rejects a length mismatch" (fun () ->
        let set = Propane.Trace_set.create ~signals:[ "a"; "b" ] () in
        Propane.Trace_set.sample_array set [| 1 |]);
  ]

(* ------------------------------------------------------------------ *)

let golden_tests =
  let run_of values_per_signal =
    let set =
      Propane.Trace_set.create ~signals:(List.map fst values_per_signal) ()
    in
    let n = List.length (snd (List.hd values_per_signal)) in
    for j = 0 to n - 1 do
      Propane.Trace_set.sample set (fun s ->
          List.nth (List.assoc s values_per_signal) j)
    done;
    set
  in
  [
    Alcotest.test_case "reports first divergence per signal" `Quick (fun () ->
        let golden = run_of [ ("a", [ 1; 1; 1 ]); ("b", [ 2; 2; 2 ]) ] in
        let run = run_of [ ("a", [ 1; 9; 1 ]); ("b", [ 2; 2; 2 ]) ] in
        match Propane.Golden.compare_runs ~golden ~run () with
        | [ { Propane.Golden.signal = "a"; first_ms = 1 } ] -> ()
        | other ->
            Alcotest.failf "unexpected: %a"
              Fmt.(list Propane.Golden.pp_divergence)
              other);
    Alcotest.test_case "identical runs have no divergences" `Quick (fun () ->
        let golden = run_of [ ("a", [ 1; 2; 3 ]) ] in
        let run = run_of [ ("a", [ 1; 2; 3 ]) ] in
        Alcotest.(check int)
          "none" 0
          (List.length (Propane.Golden.compare_runs ~golden ~run ())));
    Alcotest.test_case "until_ms forgives a truncated run" `Quick (fun () ->
        let golden = run_of [ ("a", [ 1; 2; 3; 4 ]) ] in
        let run = run_of [ ("a", [ 1; 2 ]) ] in
        Alcotest.(check int)
          "none" 0
          (List.length (Propane.Golden.compare_runs ~until_ms:2 ~golden ~run ())));
    check_raises_invalid "different signal sets rejected" (fun () ->
        let golden = run_of [ ("a", [ 1 ]) ] in
        let run = run_of [ ("b", [ 1 ]) ] in
        Propane.Golden.compare_runs ~golden ~run ());
    Alcotest.test_case "freeze preserves every sample" `Quick (fun () ->
        let set = run_of [ ("a", [ 1; 2; 3 ]); ("b", [ 4; 5; 6 ]) ] in
        let f = Propane.Golden.freeze set in
        Alcotest.(check (list string))
          "signals" [ "a"; "b" ]
          (Propane.Golden.frozen_signals f);
        Alcotest.(check int) "count" 2 (Propane.Golden.frozen_signal_count f);
        Alcotest.(check int) "duration" 3 (Propane.Golden.frozen_duration_ms f);
        List.iteri
          (fun s name ->
            let tr = Propane.Trace_set.trace set name in
            for ms = 0 to 2 do
              Alcotest.(check int)
                (Printf.sprintf "%s@%d" name ms)
                (Propane.Trace.get tr ms)
                (Propane.Golden.frozen_value f ~signal:s ~ms)
            done)
          [ "a"; "b" ]);
    check_raises_invalid "frozen_value rejects an out-of-range ms" (fun () ->
        let f = Propane.Golden.freeze (run_of [ ("a", [ 1; 2 ]) ]) in
        Propane.Golden.frozen_value f ~signal:0 ~ms:2);
    check_raises_invalid "frozen_value rejects an unknown signal" (fun () ->
        let f = Propane.Golden.freeze (run_of [ ("a", [ 1; 2 ]) ]) in
        Propane.Golden.frozen_value f ~signal:1 ~ms:0);
  ]

(* ------------------------------------------------------------------ *)

let tolerant_tests =
  let run_of values =
    let set = Propane.Trace_set.create ~signals:[ "a" ] () in
    List.iter (fun v -> Propane.Trace_set.sample set (fun _ -> v)) values;
    set
  in
  let tol epsilon hold_ms _signal = { Propane.Golden.epsilon; hold_ms } in
  [
    Alcotest.test_case "differences within epsilon are ignored" `Quick
      (fun () ->
        let golden = run_of [ 10; 20; 30 ] and run = run_of [ 12; 18; 31 ] in
        Alcotest.(check int)
          "none" 0
          (List.length
             (Propane.Golden.compare_runs_tolerant ~tolerance_for:(tol 2 0)
                ~golden ~run ())));
    Alcotest.test_case "differences beyond epsilon are reported" `Quick
      (fun () ->
        let golden = run_of [ 10; 20; 30 ] and run = run_of [ 10; 25; 30 ] in
        match
          Propane.Golden.compare_runs_tolerant ~tolerance_for:(tol 2 0)
            ~golden ~run ()
        with
        | [ { Propane.Golden.signal = "a"; first_ms = 1 } ] -> ()
        | _ -> Alcotest.fail "expected one divergence at 1");
    Alcotest.test_case "hold requires a sustained excursion" `Quick (fun () ->
        let golden = run_of [ 0; 0; 0; 0; 0; 0 ] in
        let spike = run_of [ 0; 9; 0; 0; 0; 0 ] in
        let sustained = run_of [ 0; 9; 9; 9; 0; 0 ] in
        let tolerance = tol 1 2 in
        Alcotest.(check int)
          "spike ignored" 0
          (List.length
             (Propane.Golden.compare_runs_tolerant ~tolerance_for:tolerance
                ~golden ~run:spike ()));
        match
          Propane.Golden.compare_runs_tolerant ~tolerance_for:tolerance
            ~golden ~run:sustained ()
        with
        | [ { Propane.Golden.first_ms = 1; _ } ] -> ()
        | _ -> Alcotest.fail "expected divergence at the excursion start");
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"exact tolerance coincides with first-difference GRC"
         ~count:200
         QCheck2.Gen.(
           pair
             (list_size (int_range 1 20) (int_range 0 50))
             (list_size (int_range 1 20) (int_range 0 50)))
         (fun (xs, ys) ->
           let n = min (List.length xs) (List.length ys) in
           let take l = List.filteri (fun i _ -> i < n) l in
           let golden = run_of (take xs) and run = run_of (take ys) in
           Propane.Golden.compare_runs_tolerant
             ~tolerance_for:(fun _ -> Propane.Golden.exact)
             ~golden ~run ()
           = Propane.Golden.compare_runs ~golden ~run ()));
    (* The unified signature: same [from_ms]/[until_ms] window and the
       same length-mismatch tail rule as [Trace.first_difference]. *)
    Alcotest.test_case "tail mismatch before from_ms is ignored" `Quick
      (fun () ->
        let t values = Propane.Trace.of_list ~signal:"a" values in
        Alcotest.(check (option int))
          "ignored" None
          (Propane.Golden.first_tolerant_difference ~from_ms:3
             Propane.Golden.exact
             (t [ 1; 2; 3; 4 ])
             (t [ 1; 2 ]));
        Alcotest.(check (option int))
          "inside the window" (Some 2)
          (Propane.Golden.first_tolerant_difference ~from_ms:2
             Propane.Golden.exact
             (t [ 1; 2; 3; 4 ])
             (t [ 1; 2 ])));
    check_raises_invalid "tolerant comparison rejects different signals"
      (fun () ->
        Propane.Golden.first_tolerant_difference Propane.Golden.exact
          (Propane.Trace.of_list ~signal:"x" [ 1 ])
          (Propane.Trace.of_list ~signal:"y" [ 1 ]));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"exact tolerant difference matches first_difference on any \
                window"
         ~count:300
         QCheck2.Gen.(
           let samples = list_size (int_range 0 12) (int_range 0 2) in
           pair (pair samples samples) (pair (int_range 0 14) (int_range 0 14)))
         (fun ((xs, ys), (from_ms, until_ms)) ->
           let t values = Propane.Trace.of_list ~signal:"a" values in
           Propane.Golden.first_tolerant_difference ~from_ms ~until_ms
             Propane.Golden.exact (t xs) (t ys)
           = Propane.Trace.first_difference ~from_ms ~until_ms (t xs) (t ys)));
  ]

(* ------------------------------------------------------------------ *)

let observer_tests =
  (* Two-signal runs: [set_of a b] pairs sample lists of equal length. *)
  let set_of a b =
    let set = Propane.Trace_set.create ~signals:[ "a"; "b" ] () in
    List.iter2 (fun x y -> Propane.Trace_set.sample_array set [| x; y |]) a b;
    set
  in
  let drive (obs : Propane.Observer.t) a b =
    List.iteri
      (fun ms (x, y) -> obs.Propane.Observer.on_sample ~ms [| x; y |])
      (List.combine a b);
    obs.Propane.Observer.finish ~run_ms:(List.length a)
  in
  (* Golden and run of independent lengths, low-entropy samples so
     divergences, agreements and length mismatches all occur. *)
  let runs_gen =
    QCheck2.Gen.(
      let samples n = list_size (return n) (int_range 0 2) in
      int_range 1 20 >>= fun gl ->
      int_range 1 20 >>= fun rl ->
      samples gl >>= fun ga ->
      samples gl >>= fun gb ->
      samples rl >>= fun ra ->
      samples rl >>= fun rb ->
      option (int_range 0 22) >>= fun until_ms ->
      return (ga, gb, ra, rb, until_ms))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"streaming divergence observer agrees with compare_runs"
         ~count:500 runs_gen
         (fun (ga, gb, ra, rb, until_ms) ->
           let golden = set_of ga gb and run = set_of ra rb in
           let post = Propane.Golden.compare_runs ?until_ms ~golden ~run () in
           let obs, divergences =
             Propane.Observer.divergence ?until_ms
               (Propane.Golden.freeze golden)
           in
           drive obs ra rb;
           divergences () = post));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"streaming tolerant observer agrees with compare_runs_tolerant"
         ~count:500
         QCheck2.Gen.(
           pair runs_gen (pair (int_range 0 2) (int_range 0 3)))
         (fun ((ga, gb, ra, rb, until_ms), (epsilon, hold_ms)) ->
           let golden = set_of ga gb and run = set_of ra rb in
           let tolerance_for _ = { Propane.Golden.epsilon; hold_ms } in
           let post =
             Propane.Golden.compare_runs_tolerant ?until_ms ~tolerance_for
               ~golden ~run ()
           in
           let obs, divergences =
             Propane.Observer.tolerant_divergence ?until_ms ~tolerance_for
               (Propane.Golden.freeze golden)
           in
           drive obs ra rb;
           divergences () = post));
    Alcotest.test_case "divergence observer saturates when all diverge" `Quick
      (fun () ->
        let golden = Propane.Golden.freeze (set_of [ 1; 1; 1 ] [ 2; 2; 2 ]) in
        let obs, divergences = Propane.Observer.divergence golden in
        Alcotest.(check bool) "fresh" false (obs.Propane.Observer.saturated ());
        obs.Propane.Observer.on_sample ~ms:0 [| 1; 2 |];
        Alcotest.(check bool)
          "clean sample" false
          (obs.Propane.Observer.saturated ());
        obs.Propane.Observer.on_sample ~ms:1 [| 9; 9 |];
        Alcotest.(check bool)
          "all diverged" true
          (obs.Propane.Observer.saturated ());
        obs.Propane.Observer.finish ~run_ms:2;
        Alcotest.(check bool)
          "both reported" true
          (divergences ()
          = [
              { Propane.Golden.signal = "a"; first_ms = 1 };
              { Propane.Golden.signal = "b"; first_ms = 1 };
            ]));
    Alcotest.test_case "recorder keeps the raw run" `Quick (fun () ->
        let obs, traces = Propane.Observer.recorder ~signals:[ "a"; "b" ] in
        drive obs [ 1; 2 ] [ 3; 4 ];
        let set = traces () in
        Alcotest.(check int) "duration" 2 (Propane.Trace_set.duration_ms set);
        Alcotest.(check (list int))
          "a" [ 1; 2 ]
          (Propane.Trace.to_list (Propane.Trace_set.trace set "a")));
    Alcotest.test_case "a combined recorder disables saturation" `Quick
      (fun () ->
        let golden = Propane.Golden.freeze (set_of [ 1 ] [ 2 ]) in
        let div, _ = Propane.Observer.divergence golden in
        let recorder, _ = Propane.Observer.recorder ~signals:[ "a"; "b" ] in
        let both = Propane.Observer.combine [ div; recorder ] in
        both.Propane.Observer.on_sample ~ms:0 [| 9; 9 |];
        Alcotest.(check bool)
          "alone" true
          (div.Propane.Observer.saturated ());
        Alcotest.(check bool)
          "combined" false
          (both.Propane.Observer.saturated ()));
    Alcotest.test_case "an empty combination never saturates" `Quick (fun () ->
        let obs = Propane.Observer.combine [] in
        Alcotest.(check bool)
          "never" false
          (obs.Propane.Observer.saturated ()));
  ]

(* ------------------------------------------------------------------ *)

let testcase_tests =
  [
    Alcotest.test_case "params are retrievable" `Quick (fun () ->
        let tc = Propane.Testcase.make ~id:"t" ~params:[ ("mass", 10.0) ] in
        Alcotest.(check (option (float 0.0)))
          "present" (Some 10.0)
          (Propane.Testcase.param tc "mass");
        Alcotest.(check (option (float 0.0)))
          "absent" None
          (Propane.Testcase.param tc "velocity"));
    check_raises_invalid "param_exn on missing" (fun () ->
        Propane.Testcase.param_exn (Propane.Testcase.make ~id:"t" ~params:[]) "x");
    check_raises_invalid "duplicate params rejected" (fun () ->
        Propane.Testcase.make ~id:"t" ~params:[ ("m", 1.0); ("m", 2.0) ]);
    Alcotest.test_case "grid is the cartesian product" `Quick (fun () ->
        let cases =
          Propane.Testcase.grid
            [ ("a", [ 1.0; 2.0 ]); ("b", [ 3.0; 4.0; 5.0 ]) ]
        in
        Alcotest.(check int) "count" 6 (List.length cases);
        let ids = List.map Propane.Testcase.id cases in
        Alcotest.(check int)
          "distinct ids" 6
          (List.length (List.sort_uniq String.compare ids)));
    Alcotest.test_case "uniform_axis endpoints and spacing" `Quick (fun () ->
        let _, values =
          Propane.Testcase.uniform_axis "m" ~lo:8_000.0 ~hi:20_000.0 ~steps:5
        in
        Alcotest.(check int) "count" 5 (List.length values);
        close "lo" 8_000.0 (List.hd values);
        close "hi" 20_000.0 (List.nth values 4);
        close "mid" 14_000.0 (List.nth values 2));
    check_raises_invalid "axis needs lo < hi" (fun () ->
        Propane.Testcase.uniform_axis "m" ~lo:2.0 ~hi:1.0 ~steps:3);
    Alcotest.test_case "the paper's workload is 25 cases" `Quick (fun () ->
        Alcotest.(check int)
          "count" 25
          (List.length Arrestment.System.paper_testcases));
  ]

(* ------------------------------------------------------------------ *)

let campaign_tests =
  [
    Alcotest.test_case "paper plan is 4,000 runs per signal" `Quick (fun () ->
        let plan =
          Propane.Campaign.paper_plan ~targets:[ "x" ]
            ~testcases:Arrestment.System.paper_testcases ~width:16 ()
        in
        Alcotest.(check int)
          "per target" 4_000
          (Propane.Campaign.runs_per_target plan);
        Alcotest.(check int) "size" 4_000 (Propane.Campaign.size plan));
    Alcotest.test_case "full arrestment campaign is 52,000 runs" `Quick
      (fun () ->
        Alcotest.(check int)
          "size" 52_000
          (Propane.Campaign.size (Arrestment.System.paper_campaign ())));
    Alcotest.test_case "paper times are 0.5s..5.0s" `Quick (fun () ->
        let times = List.map Sim.Sim_time.to_ms Propane.Campaign.paper_times in
        Alcotest.(check int) "count" 10 (List.length times);
        Alcotest.(check int) "first" 500 (List.hd times);
        Alcotest.(check int) "last" 5_000 (List.nth times 9));
    Alcotest.test_case "experiments expand deterministically" `Quick (fun () ->
        let plan =
          Propane.Campaign.make ~name:"t" ~targets:[ "x"; "y" ]
            ~testcases:[ Propane.Testcase.make ~id:"a" ~params:[] ]
            ~times:[ Sim.Sim_time.of_ms 1 ]
            ~errors:[ Propane.Error_model.Bit_flip 0 ]
        in
        let exps = Propane.Campaign.experiments plan in
        Alcotest.(check int) "count" 2 (List.length exps);
        Alcotest.(check (list string))
          "targets in order" [ "x"; "y" ]
          (List.map (fun (_, inj) -> inj.Propane.Injection.target) exps));
    check_raises_invalid "duplicate targets rejected" (fun () ->
        Propane.Campaign.make ~name:"t" ~targets:[ "x"; "x" ]
          ~testcases:[ Propane.Testcase.make ~id:"a" ~params:[] ]
          ~times:[ Sim.Sim_time.of_ms 1 ]
          ~errors:[ Propane.Error_model.Bit_flip 0 ]);
    check_raises_invalid "empty dimensions rejected" (fun () ->
        Propane.Campaign.make ~name:"t" ~targets:[] ~testcases:[] ~times:[]
          ~errors:[]);
  ]

(* ------------------------------------------------------------------ *)

let store_layout = [ ("x", 16); ("y", 16); ("hw", 16) ]

let signal_store_tests =
  let make () =
    Propane.Signal_store.create
      ~modes:[ ("hw", Propane.Signal_store.Immediate) ]
      ~signals:store_layout ()
  in
  [
    Alcotest.test_case "write truncates to width" `Quick (fun () ->
        let store = Propane.Signal_store.create ~signals:[ ("n", 8) ] () in
        Propane.Signal_store.write store "n" 0x1FF;
        Alcotest.(check int) "value" 0xFF (Propane.Signal_store.read store "n"));
    Alcotest.test_case "at-read trap fires on first read only" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.write store "x" 5;
        Propane.Signal_store.inject store "x" (fun v -> v + 1);
        Alcotest.(check bool)
          "pending" true
          (Propane.Signal_store.pending_injection store "x");
        Alcotest.(check int)
          "peek unaffected" 5
          (Propane.Signal_store.peek store "x");
        Alcotest.(check int) "corrupted" 6 (Propane.Signal_store.read store "x");
        Alcotest.(check int) "persists" 6 (Propane.Signal_store.read store "x");
        Alcotest.(check bool)
          "consumed" false
          (Propane.Signal_store.pending_injection store "x"));
    Alcotest.test_case "at-read trap survives producer writes" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.inject store "x" (fun v -> v lxor 0x8000);
        Propane.Signal_store.write store "x" 100;
        Alcotest.(check int)
          "corrupts fresh value" (100 lxor 0x8000)
          (Propane.Signal_store.read store "x"));
    Alcotest.test_case "immediate mode corrupts the cell now" `Quick (fun () ->
        let store = make () in
        Propane.Signal_store.write store "hw" 3;
        Propane.Signal_store.inject store "hw" (fun v -> v + 4);
        Alcotest.(check int) "peek" 7 (Propane.Signal_store.peek store "hw"));
    Alcotest.test_case "immediate corruption is clobbered by a write" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.inject store "hw" (fun v -> v + 4);
        Propane.Signal_store.write store "hw" 100;
        Alcotest.(check int) "fresh" 100 (Propane.Signal_store.read store "hw"));
    Alcotest.test_case "immediate corruption survives read-modify-write" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.write store "hw" 10;
        Propane.Signal_store.inject store "hw" (fun v -> v + 1000);
        Propane.Signal_store.write store "hw"
          (Propane.Signal_store.peek store "hw" + 1);
        Alcotest.(check int)
          "carried" 1011
          (Propane.Signal_store.read store "hw"));
    Alcotest.test_case "write guards transform produced values" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.add_write_guard store "y" (fun v -> min v 10);
        Propane.Signal_store.write store "y" 100;
        Alcotest.(check int) "clamped" 10 (Propane.Signal_store.read store "y"));
    Alcotest.test_case "guards also see trap-corrupted values" `Quick
      (fun () ->
        let store = make () in
        Propane.Signal_store.add_write_guard store "x" (fun v -> min v 10);
        Propane.Signal_store.write store "x" 5;
        Propane.Signal_store.inject store "x" (fun _ -> 5000);
        Alcotest.(check int) "repaired" 10 (Propane.Signal_store.read store "x"));
    Alcotest.test_case "guards do not apply to poke" `Quick (fun () ->
        let store = make () in
        Propane.Signal_store.add_write_guard store "y" (fun v -> min v 10);
        Propane.Signal_store.poke store "y" 100;
        Alcotest.(check int) "raw" 100 (Propane.Signal_store.peek store "y"));
    Alcotest.test_case "clear_injections drops pendings" `Quick (fun () ->
        let store = make () in
        Propane.Signal_store.inject store "x" (fun v -> v + 1);
        Propane.Signal_store.clear_injections store;
        Alcotest.(check int) "clean" 0 (Propane.Signal_store.read store "x"));
    check_raises_invalid "unknown signal rejected" (fun () ->
        Propane.Signal_store.read (make ()) "zz");
    check_raises_invalid "mode for unknown signal rejected" (fun () ->
        Propane.Signal_store.create
          ~modes:[ ("zz", Propane.Signal_store.Immediate) ]
          ~signals:store_layout ());
    Alcotest.test_case "mode lookup" `Quick (fun () ->
        let store = make () in
        Alcotest.(check bool)
          "hw immediate" true
          (Propane.Signal_store.mode store "hw" = Propane.Signal_store.Immediate);
        Alcotest.(check bool)
          "x at-read" true
          (Propane.Signal_store.mode store "x" = Propane.Signal_store.At_read));
  ]

(* ------------------------------------------------------------------ *)
(* Synthetic SUT: y = x >> 4, x driven externally as a ramp.           *)

let scaler_sut () =
  let instantiate _tc =
    let store =
      Propane.Signal_store.create ~signals:[ ("x", 16); ("y", 16) ] ()
    in
    let t = ref 0 in
    {
      Propane.Sut.read = Propane.Signal_store.peek store;
      write = Propane.Signal_store.poke store;
      inject = Propane.Signal_store.inject store;
      step =
        (fun () ->
          incr t;
          Propane.Signal_store.write store "x" (!t * 16);
          Propane.Signal_store.write store "y"
            (Propane.Signal_store.read store "x" lsr 4));
      finished = (fun () -> !t >= 100);
      snapshot = None;
    }
  in
  {
    Propane.Sut.name = "scaler";
    signals = [ ("x", 16); ("y", 16) ];
    digests = [ ("SCALE", "scale-v1") ];
    instantiate;
  }

let scale_model =
  Propagation.System_model.make_exn
    ~modules:
      [
        Propagation.Sw_module.make ~name:"SCALE"
          ~inputs:[ Propagation.Signal.make "x" ]
          ~outputs:[ Propagation.Signal.make "y" ];
      ]
    ~system_inputs:[ Propagation.Signal.make "x" ]
    ~system_outputs:[ Propagation.Signal.make "y" ]

let scaler_campaign =
  Propane.Campaign.make ~name:"scaler" ~targets:[ "x" ]
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Sim.Sim_time.of_ms [ 10; 20; 30; 40; 50 ])
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let runner_tests =
  [
    Alcotest.test_case "golden run stops at finished" `Quick (fun () ->
        let traces =
          Propane.Runner.golden_run (scaler_sut ())
            (Propane.Testcase.make ~id:"t" ~params:[])
        in
        Alcotest.(check int)
          "duration" 100
          (Propane.Trace_set.duration_ms traces));
    Alcotest.test_case "golden run honours max_ms" `Quick (fun () ->
        let traces =
          Propane.Runner.golden_run ~max_ms:10 (scaler_sut ())
            (Propane.Testcase.make ~id:"t" ~params:[])
        in
        Alcotest.(check int)
          "duration" 10
          (Propane.Trace_set.duration_ms traces));
    Alcotest.test_case "injection corrupts the target trace" `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 15)
        in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check (option int))
          "x diverges at 10" (Some 10)
          (Propane.Results.divergence_of outcome "x");
        Alcotest.(check (option int))
          "y diverges at 10" (Some 10)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "low-bit flips never reach y" `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 2)
        in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check bool)
          "x diverges" true
          (Propane.Results.divergence_of outcome "x" <> None);
        Alcotest.(check (option int))
          "y clean" None
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "injection beyond duration leaves the run golden" `Quick
      (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 5_000)
            ~error:(Propane.Error_model.Bit_flip 15)
        in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check int)
          "no divergences" 0
          (List.length outcome.Propane.Results.divergences));
    Alcotest.test_case "truncation shortens the run but keeps the window"
      `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 15)
        in
        let outcome =
          Propane.Runner.run_experiment ~truncate_after_ms:5 sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check (option int))
          "still seen" (Some 10)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "delayed injection diverges only after its delay"
      `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:
              (Propane.Error_model.Delayed
                 { model = Propane.Error_model.Bit_flip 15; delay_ms = 25 })
        in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check (option int))
          "x diverges at inject + delay" (Some 35)
          (Propane.Results.divergence_of outcome "x");
        Alcotest.(check (option int))
          "y diverges at inject + delay" (Some 35)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "truncation preserves a delayed fire" `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:
              (Propane.Error_model.Delayed
                 { model = Propane.Error_model.Bit_flip 15; delay_ms = 25 })
        in
        (* Truncation counts from the last fire, not the injection
           time, so a 5 ms margin still reaches the delayed shot. *)
        let outcome =
          Propane.Runner.run_experiment ~truncate_after_ms:5 sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        Alcotest.(check (option int))
          "still seen" (Some 35)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "intermittent re-corrupts every period in its window"
      `Quick (fun () ->
        let campaign =
          Propane.Campaign.make ~name:"intermittent" ~targets:[ "x" ]
            ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
            ~times:[ Sim.Sim_time.of_ms 10 ]
            ~errors:
              [
                Propane.Error_model.Intermittent
                  {
                    model = Propane.Error_model.Bit_flip 15;
                    period_ms = 10;
                    window_ms = 31;
                  };
              ]
        in
        let captured = ref None in
        let (_ : Propane.Results.t) =
          runner ~keep_traces:true
            ~on_run_traces:(fun ~index:_ ts -> captured := Some ts)
            (scaler_sut ()) campaign
        in
        match !captured with
        | None -> Alcotest.fail "no traces captured"
        | Some ts ->
            let x = Propane.Trace_set.trace ts "x" in
            for ms = 0 to Propane.Trace_set.duration_ms ts - 1 do
              (* golden x is (ms+1)*16; the flip lands at 10, 20, 30
                 and 40 (the last period start inside the 31 ms
                 window) and nowhere else. *)
              let golden_v = (ms + 1) * 16 in
              let expect =
                if List.mem ms [ 10; 20; 30; 40 ] then golden_v lxor 32768
                else golden_v
              in
              Alcotest.(check int)
                (Printf.sprintf "x@%d" ms)
                expect (Propane.Trace.get x ms)
            done);
    check_raises_invalid "temporal models cannot nest in an injection"
      (fun () ->
        Propane.Injection.make ~target:"x" ~at:Sim.Sim_time.zero
          ~error:
            (Propane.Error_model.Delayed
               {
                 model =
                   Propane.Error_model.Delayed
                     { model = Propane.Error_model.Bit_flip 0; delay_ms = 1 };
                 delay_ms = 1;
               }));
    check_raises_invalid "unknown target rejected" (fun () ->
        Propane.Runner.injection_run (scaler_sut ()) ~duration_ms:10
          (Propane.Testcase.make ~id:"t" ~params:[])
          (Propane.Injection.make ~target:"zz" ~at:Sim.Sim_time.zero
             ~error:(Propane.Error_model.Bit_flip 0)));
    Alcotest.test_case "campaigns are deterministic for a seed" `Quick
      (fun () ->
        let run () =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let a = run () and b = run () in
        Alcotest.(check int)
          "count" (Propane.Results.count a)
          (Propane.Results.count b);
        List.iter2
          (fun (x : Propane.Results.outcome) (y : Propane.Results.outcome) ->
            Alcotest.(check int)
              "divergence lists" 0
              (compare x.divergences y.divergences))
          (Propane.Results.outcomes a)
          (Propane.Results.outcomes b));
    Alcotest.test_case "parallel campaign equals the sequential one" `Quick
      (fun () ->
        (* Includes a randomised error model so the per-index rng
           derivation is genuinely exercised. *)
        let campaign =
          Propane.Campaign.make ~name:"par" ~targets:[ "x" ]
            ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
            ~times:[ Sim.Sim_time.of_ms 10; Sim.Sim_time.of_ms 40 ]
            ~errors:
              (Propane.Error_model.bit_flips ~width:16
              @ [ Propane.Error_model.Replace_uniform ])
        in
        let seq = runner ~seed:9L ~jobs:1 (scaler_sut ()) campaign in
        let par = runner ~seed:9L ~jobs:3 (scaler_sut ()) campaign in
        Alcotest.(check int)
          "count" (Propane.Results.count seq)
          (Propane.Results.count par);
        List.iter2
          (fun (a : Propane.Results.outcome) (b : Propane.Results.outcome) ->
            Alcotest.(check string)
              "target" a.injection.Propane.Injection.target
              b.injection.Propane.Injection.target;
            Alcotest.(check bool)
              "divergences" true
              (a.divergences = b.divergences))
          (Propane.Results.outcomes seq)
          (Propane.Results.outcomes par));
    check_raises_invalid "run rejects zero jobs" (fun () ->
        runner ~jobs:0 (scaler_sut ()) scaler_campaign);
    check_raises_invalid "resume without a journal is rejected" (fun () ->
        runner ~resume:true (scaler_sut ()) scaler_campaign);
    Alcotest.test_case "events bracket every run" `Quick (fun () ->
        let size = Propane.Campaign.size scaler_campaign in
        let runs = ref 0 and started = ref 0 and finished = ref 0 in
        let goldens = ref 0 in
        let _ =
          runner
            ~on_event:(fun ev ->
              match ev with
              | Propane.Runner.Started { total; skipped; jobs } ->
                  incr started;
                  Alcotest.(check int) "total" size total;
                  Alcotest.(check int) "skipped" 0 skipped;
                  Alcotest.(check int) "jobs" 1 jobs
              | Propane.Runner.Goldens_done { testcases } ->
                  incr goldens;
                  Alcotest.(check int) "goldens" 1 testcases
              | Propane.Runner.Worker_attached _ ->
                  Alcotest.fail "local runs attach no remote workers"
              | Propane.Runner.Analysis_tick _ ->
                  Alcotest.fail "no live analysis attached"
              | Propane.Runner.Run_done { completed; total; worker; _ } ->
                  incr runs;
                  Alcotest.(check int) "completed" !runs completed;
                  Alcotest.(check int) "run total" size total;
                  Alcotest.(check int) "worker" 0 worker
              | Propane.Runner.Finished { completed; total } ->
                  incr finished;
                  Alcotest.(check int) "finished completed" size completed;
                  Alcotest.(check int) "finished total" size total)
            (scaler_sut ()) scaler_campaign
        in
        Alcotest.(check int) "runs" size !runs;
        Alcotest.(check int) "started once" 1 !started;
        Alcotest.(check int) "goldens once" 1 !goldens;
        Alcotest.(check int) "finished once" 1 !finished);
    Alcotest.test_case "early exit stops once every signal diverged" `Quick
      (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Golden.freeze (Propane.Runner.golden_run sut tc) in
        let injection =
          (* Bit 15 propagates to y, so both signals diverge at ms 10
             and the run can stop right after. *)
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 15)
        in
        let obs, divergences = Propane.Observer.divergence golden in
        let run_ms, status =
          Propane.Runner.observed_run sut ~duration_ms:100 tc injection obs
        in
        Alcotest.(check int) "stopped early" 11 run_ms;
        Alcotest.(check bool)
          "completed" true
          (status = Propane.Results.Completed);
        Alcotest.(check int) "both diverged" 2 (List.length (divergences ())));
    Alcotest.test_case "a rider recorder keeps the run full-length" `Quick
      (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Golden.freeze (Propane.Runner.golden_run sut tc) in
        let injection =
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 15)
        in
        let recorder, traces =
          Propane.Observer.recorder ~signals:(Propane.Sut.signal_names sut)
        in
        let outcome =
          Propane.Runner.run_experiment ~observers:[ recorder ] sut ~golden tc
            injection
        in
        Alcotest.(check int)
          "full duration" 100
          (Propane.Trace_set.duration_ms (traces ()));
        Alcotest.(check (option int))
          "outcome unchanged" (Some 10)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "streaming, keep-traces and jobs:4 agree exactly" `Quick
      (fun () ->
        let outcomes r = Propane.Results.outcomes r in
        let streaming =
          runner ~seed:5L (scaler_sut ()) scaler_campaign
        in
        let kept =
          runner ~seed:5L ~keep_traces:true (scaler_sut ())
            scaler_campaign
        in
        let par =
          runner ~seed:5L ~jobs:4 (scaler_sut ()) scaler_campaign
        in
        Alcotest.(check bool)
          "keep-traces identical" true
          (outcomes streaming = outcomes kept);
        Alcotest.(check bool)
          "jobs:4 identical" true
          (outcomes streaming = outcomes par));
    Alcotest.test_case "streaming and keep-traces journals are byte-identical"
      `Quick (fun () ->
        let journal_of ~keep_traces =
          let path = Filename.temp_file "propane_stream" ".journal" in
          let _ =
            runner ~seed:11L ~journal:path ~keep_traces
              (scaler_sut ()) scaler_campaign
          in
          let contents =
            In_channel.with_open_bin path In_channel.input_all
          in
          Sys.remove path;
          contents
        in
        Alcotest.(check bool)
          "same bytes" true
          (String.equal (journal_of ~keep_traces:false)
             (journal_of ~keep_traces:true)));
    Alcotest.test_case "on_run_traces sees every run in full" `Quick (fun () ->
        let seen = ref 0 in
        let _ =
          runner ~seed:7L
            ~on_run_traces:(fun ~index:_ set ->
              incr seen;
              Alcotest.(check int)
                "full duration" 100
                (Propane.Trace_set.duration_ms set))
            (scaler_sut ()) scaler_campaign
        in
        Alcotest.(check int)
          "all runs" (Propane.Campaign.size scaler_campaign)
          !seen);
    Alcotest.test_case "parallel runs emit events from the coordinator" `Quick
      (fun () ->
        let size = Propane.Campaign.size scaler_campaign in
        let runs = ref 0 in
        let _ =
          runner ~jobs:3
            ~on_event:(function
              | Propane.Runner.Run_done { completed; worker; _ } ->
                  incr runs;
                  (* Events arrive in completion order but counts are
                     monotone because they are emitted serially. *)
                  Alcotest.(check int) "completed" !runs completed;
                  Alcotest.(check bool) "worker id" true
                    (0 <= worker && worker < 3)
              | _ -> ())
            (scaler_sut ()) scaler_campaign
        in
        Alcotest.(check int) "runs" size !runs);
    Alcotest.test_case "an injected run that finishes early has its true length"
      `Quick (fun () ->
        (* A self-halting SUT: s ramps by one per ms and the run is over
           once s reaches 60; k never changes.  Flipping bit 6 of s at
           ms 10 pushes it past the threshold, so the injected run ends
           ~50 ms before the golden one — the observer must be told the
           true length for the length-mismatch rule to fire on k. *)
        let halting =
          let instantiate _tc =
            let store =
              Propane.Signal_store.create
                ~signals:[ ("s", 16); ("k", 1) ]
                ()
            in
            {
              Propane.Sut.read = Propane.Signal_store.peek store;
              write = Propane.Signal_store.poke store;
              inject = Propane.Signal_store.inject store;
              step =
                (fun () ->
                  Propane.Signal_store.write store "s"
                    (Propane.Signal_store.read store "s" + 1));
              finished = (fun () -> Propane.Signal_store.peek store "s" >= 60);
              snapshot = None;
            }
          in
          {
            Propane.Sut.name = "halting";
            signals = [ ("s", 16); ("k", 1) ];
            digests = [];
            instantiate;
          }
        in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run halting tc in
        Alcotest.(check int)
          "golden length" 60
          (Propane.Trace_set.duration_ms golden);
        let obs, divergences =
          Propane.Observer.divergence (Propane.Golden.freeze golden)
        in
        let injection =
          Propane.Injection.make ~target:"s" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 6)
        in
        let run_ms, status =
          Propane.Runner.observed_run halting ~duration_ms:60 tc injection obs
        in
        Alcotest.(check bool)
          "completed" true
          (status = Propane.Results.Completed);
        Alcotest.(check int) "true length" 11 run_ms;
        Alcotest.(check bool)
          "s diverged at the injection" true
          (List.exists
             (fun (d : Propane.Golden.divergence) ->
               String.equal d.signal "s" && d.first_ms = 10)
             (divergences ()));
        Alcotest.(check bool)
          "k diverged at the early end" true
          (List.exists
             (fun (d : Propane.Golden.divergence) ->
               String.equal d.signal "k" && d.first_ms = 11)
             (divergences ())));
    check_raises_invalid "watchdog budget must be positive" (fun () ->
        runner ~run_timeout_ms:0 (scaler_sut ()) scaler_campaign);
    check_raises_invalid "negative retries rejected" (fun () ->
        runner ~retries:(-1) (scaler_sut ()) scaler_campaign);
  ]

(* ------------------------------------------------------------------ *)

let estimator_tests =
  [
    Alcotest.test_case "wilson interval brackets the proportion" `Quick
      (fun () ->
        let lo, hi = Propane.Estimator.wilson_interval ~errors:50 ~trials:100 in
        Alcotest.(check bool) "lo" true (lo < 0.5 && 0.4 < lo);
        Alcotest.(check bool) "hi" true (0.5 < hi && hi < 0.6));
    Alcotest.test_case "wilson with no trials is vacuous" `Quick (fun () ->
        Alcotest.(check (pair (float 0.0) (float 0.0)))
          "interval" (0.0, 1.0)
          (Propane.Estimator.wilson_interval ~errors:0 ~trials:0));
    Alcotest.test_case "wilson stays in [0,1] at the extremes" `Quick
      (fun () ->
        let lo, hi = Propane.Estimator.wilson_interval ~errors:10 ~trials:10 in
        Alcotest.(check bool) "bounds" true (0.0 <= lo && hi <= 1.0);
        Alcotest.(check (float 1e-9)) "hi is 1" 1.0 hi);
    check_raises_invalid "wilson rejects errors > trials" (fun () ->
        Propane.Estimator.wilson_interval ~errors:2 ~trials:1);
    Alcotest.test_case "scaler permeability is exactly 12/16" `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let matrix =
          Propane.Estimator.estimate_matrix ~model:scale_model ~results "SCALE"
        in
        close "P" 0.75 (Propagation.Perm_matrix.get matrix ~input:1 ~output:1));
    Alcotest.test_case "estimates carry campaign detail" `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        match
          Propane.Estimator.estimate_pairs ~model:scale_model ~results "SCALE"
        with
        | [ e ] ->
            Alcotest.(check int) "n_inj" 80 e.Propane.Estimator.injections;
            Alcotest.(check int) "n_err" 60 e.Propane.Estimator.errors
        | other ->
            Alcotest.failf "expected 1 estimate, got %d" (List.length other));
    Alcotest.test_case "estimate_all flags missing targets" `Quick (fun () ->
        let empty = Propane.Results.create ~sut:"scaler" ~campaign:"none" in
        match Propane.Estimator.estimate_all ~model:scale_model empty with
        | Error msg ->
            Alcotest.(check bool)
              "mentions x" true
              (contains_substring msg "x")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "attribution window discounts late divergences" `Quick
      (fun () ->
        (* Synthetic outcome: y diverges 500 ms after the injection. *)
        let results = Propane.Results.create ~sut:"scaler" ~campaign:"c" in
        Propane.Results.add results
          {
            Propane.Results.testcase = "t";
            injection =
              Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 100)
                ~error:(Propane.Error_model.Bit_flip 0);
            divergences = [ { Propane.Golden.signal = "y"; first_ms = 600 } ];
            status = Propane.Results.Completed;
          };
        let direct =
          Propane.Estimator.estimate_matrix
            ~attribution:(Propane.Estimator.Direct { window_ms = 64 })
            ~model:scale_model ~results "SCALE"
        in
        let any =
          Propane.Estimator.estimate_matrix
            ~attribution:Propane.Estimator.Any_divergence ~model:scale_model
            ~results "SCALE"
        in
        close "direct discounts" 0.0
          (Propagation.Perm_matrix.get direct ~input:1 ~output:1);
        close "any counts" 1.0
          (Propagation.Perm_matrix.get any ~input:1 ~output:1));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"wilson interval is a probability bracket"
         ~count:500
         QCheck2.Gen.(pair (int_range 1 2000) (int_range 0 2000))
         (fun (trials, errors) ->
           let errors = min errors trials in
           let lo, hi = Propane.Estimator.wilson_interval ~errors ~trials in
           let value = float_of_int errors /. float_of_int trials in
           0.0 <= lo
           && lo <= value +. 1e-9
           && value <= hi +. 1e-9
           && hi <= 1.0));
    Alcotest.test_case "failed runs count as errors unless excluded" `Quick
      (fun () ->
        let results = Propane.Results.create ~sut:"scaler" ~campaign:"c" in
        let add status divergences =
          Propane.Results.add results
            {
              Propane.Results.testcase = "t";
              injection =
                Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
                  ~error:(Propane.Error_model.Bit_flip 0);
              divergences;
              status;
            }
        in
        add Propane.Results.Completed
          [ { Propane.Golden.signal = "y"; first_ms = 10 } ];
        add (Propane.Results.Crashed { at_ms = 12; reason = "boom" }) [];
        add (Propane.Results.Hung { budget_ms = 50 }) [];
        let estimate ?on_failure () =
          match
            Propane.Estimator.estimate_pairs ?on_failure ~model:scale_model
              ~results "SCALE"
          with
          | [ e ] ->
              (e.Propane.Estimator.injections, e.Propane.Estimator.errors)
          | other ->
              Alcotest.failf "expected 1 estimate, got %d" (List.length other)
        in
        Alcotest.(check (pair int int)) "counted as errors" (3, 3) (estimate ());
        Alcotest.(check (pair int int))
          "excluded entirely" (1, 1)
          (estimate ~on_failure:`Exclude ()));
  ]

(* ------------------------------------------------------------------ *)

let results_tests =
  [
    Alcotest.test_case "add/count/by_target" `Quick (fun () ->
        let r = Propane.Results.create ~sut:"s" ~campaign:"c" in
        let outcome target =
          {
            Propane.Results.testcase = "t";
            injection =
              Propane.Injection.make ~target ~at:Sim.Sim_time.zero
                ~error:(Propane.Error_model.Bit_flip 0);
            divergences = [];
            status = Propane.Results.Completed;
          }
        in
        Propane.Results.add r (outcome "x");
        Propane.Results.add r (outcome "y");
        Propane.Results.add r (outcome "x");
        Alcotest.(check int) "count" 3 (Propane.Results.count r);
        Alcotest.(check int) "x" 2 (Propane.Results.injections_into r "x");
        Alcotest.(check int)
          "y" 1
          (List.length (Propane.Results.by_target r "y"));
        Alcotest.(check int) "z" 0 (Propane.Results.injections_into r "z"));
    Alcotest.test_case "merge concatenates" `Quick (fun () ->
        let mk () = Propane.Results.create ~sut:"s" ~campaign:"c" in
        let a = mk () and b = mk () in
        let outcome =
          {
            Propane.Results.testcase = "t";
            injection =
              Propane.Injection.make ~target:"x" ~at:Sim.Sim_time.zero
                ~error:(Propane.Error_model.Bit_flip 0);
            divergences = [];
            status = Propane.Results.Completed;
          }
        in
        Propane.Results.add a outcome;
        Propane.Results.add b outcome;
        Alcotest.(check int)
          "merged" 2
          (Propane.Results.count (Propane.Results.merge a b)));
    check_raises_invalid "merge rejects different campaigns" (fun () ->
        Propane.Results.merge
          (Propane.Results.create ~sut:"s" ~campaign:"c1")
          (Propane.Results.create ~sut:"s" ~campaign:"c2"));
  ]

(* ------------------------------------------------------------------ *)

let synthetic_results divergence_specs =
  (* One outcome per spec: (target, testcase, at_ms, [(signal, at)]). *)
  let results = Propane.Results.create ~sut:"synth" ~campaign:"synth" in
  List.iter
    (fun (target, testcase, at_ms, divergences) ->
      Propane.Results.add results
        {
          Propane.Results.testcase;
          injection =
            Propane.Injection.make ~target ~at:(Sim.Sim_time.of_ms at_ms)
              ~error:(Propane.Error_model.Bit_flip 0);
          divergences =
            List.map
              (fun (signal, first_ms) -> { Propane.Golden.signal; first_ms })
              divergences;
          status = Propane.Results.Completed;
        })
    divergence_specs;
  results

let latency_tests =
  [
    Alcotest.test_case "statistics over counted errors" `Quick (fun () ->
        let results =
          synthetic_results
            [
              ("x", "t", 100, [ ("y", 102) ]);
              ("x", "t", 100, [ ("y", 110) ]);
              ("x", "t", 100, [ ("y", 104) ]);
              ("x", "t", 100, []);
            ]
        in
        match
          Propane.Latency.pair_stats ~model:scale_model ~results "SCALE"
        with
        | [ Some s ] ->
            Alcotest.(check int) "samples" 3 s.Propane.Latency.samples;
            Alcotest.(check int) "min" 2 s.Propane.Latency.min_ms;
            Alcotest.(check int) "max" 10 s.Propane.Latency.max_ms;
            Alcotest.(check int) "median" 4 s.Propane.Latency.median_ms;
            Alcotest.(check (float 1e-9)) "mean" (16.0 /. 3.0)
              s.Propane.Latency.mean_ms
        | _ -> Alcotest.fail "expected one defined stat");
    Alcotest.test_case "window drops late divergences" `Quick (fun () ->
        let results =
          synthetic_results [ ("x", "t", 100, [ ("y", 400) ]) ]
        in
        match
          Propane.Latency.pair_stats
            ~attribution:(Propane.Estimator.Direct { window_ms = 64 })
            ~model:scale_model ~results "SCALE"
        with
        | [ None ] -> ()
        | _ -> Alcotest.fail "expected no stats");
    Alcotest.test_case "any-divergence keeps late ones" `Quick (fun () ->
        let results =
          synthetic_results [ ("x", "t", 100, [ ("y", 400) ]) ]
        in
        match
          Propane.Latency.pair_stats
            ~attribution:Propane.Estimator.Any_divergence ~model:scale_model
            ~results "SCALE"
        with
        | [ Some s ] -> Alcotest.(check int) "latency" 300 s.Propane.Latency.max_ms
        | _ -> Alcotest.fail "expected stats");
    Alcotest.test_case "all_stats flattens defined pairs" `Quick (fun () ->
        let results = synthetic_results [ ("x", "t", 1, [ ("y", 2) ]) ] in
        Alcotest.(check int)
          "one" 1
          (List.length (Propane.Latency.all_stats ~model:scale_model results)));
    Alcotest.test_case "streaming observer measures per-signal latency" `Quick
      (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let frozen =
          Propane.Golden.freeze (Propane.Runner.golden_run sut tc)
        in
        let obs, latencies = Propane.Latency.observer frozen in
        let _ =
          Propane.Runner.observed_run sut ~duration_ms:100 tc
            (Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
               ~error:(Propane.Error_model.Bit_flip 2))
            obs
        in
        (* Bit 2 never reaches y, so only x contributes — at zero
           latency, the injection instant itself. *)
        Alcotest.(check (list (pair string int)))
          "x only" [ ("x", 0) ]
          (latencies ()));
    Alcotest.test_case "streaming observer without an injection is empty"
      `Quick (fun () ->
        let sut = scaler_sut () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let frozen =
          Propane.Golden.freeze (Propane.Runner.golden_run sut tc)
        in
        let obs, latencies = Propane.Latency.observer frozen in
        let _ =
          Propane.Runner.observed_run sut ~duration_ms:100 tc
            (Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 5_000)
               ~error:(Propane.Error_model.Bit_flip 15))
            obs
        in
        Alcotest.(check (list (pair string int))) "none" [] (latencies ()));
  ]

(* ------------------------------------------------------------------ *)

let uniformity_tests =
  [
    Alcotest.test_case "locations group by target, case and time" `Quick
      (fun () ->
        let results =
          synthetic_results
            [
              ("x", "a", 10, [ ("y", 11) ]);
              ("x", "a", 10, []);
              ("x", "a", 20, [ ("y", 21) ]);
              ("x", "b", 10, []);
            ]
        in
        let locs = Propane.Uniformity.locations ~outputs:[ "y" ] results in
        Alcotest.(check int) "groups" 3 (List.length locs));
    Alcotest.test_case "report classifies all/none/mixed" `Quick (fun () ->
        let results =
          synthetic_results
            [
              (* location 1: all propagate *)
              ("x", "a", 10, [ ("y", 11) ]);
              ("x", "a", 10, [ ("y", 12) ]);
              (* location 2: none propagate *)
              ("x", "a", 20, []);
              ("x", "a", 20, []);
              (* location 3: mixed *)
              ("x", "b", 10, [ ("y", 11) ]);
              ("x", "b", 10, []);
            ]
        in
        let report = Propane.Uniformity.analyse ~outputs:[ "y" ] results in
        Alcotest.(check int) "locations" 3 report.Propane.Uniformity.locations;
        Alcotest.(check int) "all" 1 report.Propane.Uniformity.uniform_all;
        Alcotest.(check int) "none" 1 report.Propane.Uniformity.uniform_none;
        Alcotest.(check int) "mixed" 1 report.Propane.Uniformity.mixed;
        Alcotest.(check (float 1e-9))
          "fraction" (2.0 /. 3.0)
          (Propane.Uniformity.uniform_fraction report));
    Alcotest.test_case "histogram bins sum to the location count" `Quick
      (fun () ->
        let results =
          synthetic_results
            [
              ("x", "a", 10, [ ("y", 11) ]);
              ("x", "a", 10, []);
              ("x", "b", 10, []);
            ]
        in
        let report = Propane.Uniformity.analyse ~outputs:[ "y" ] results in
        Alcotest.(check int)
          "sum"
          report.Propane.Uniformity.locations
          (Array.fold_left ( + ) 0 report.Propane.Uniformity.histogram));
    Alcotest.test_case "non-output divergences do not count" `Quick (fun () ->
        let results =
          synthetic_results [ ("x", "a", 10, [ ("internal", 11) ]) ]
        in
        let report = Propane.Uniformity.analyse ~outputs:[ "y" ] results in
        Alcotest.(check int) "none" 1 report.Propane.Uniformity.uniform_none);
  ]

(* ------------------------------------------------------------------ *)

let storage_tests =
  let temp suffix = Filename.temp_file "propane_test" suffix in
  let save_ok = function Ok () -> () | Error msg -> Alcotest.fail msg in
  [
    Alcotest.test_case "error model round-trips" `Quick (fun () ->
        List.iter
          (fun e ->
            match
              Propane.Storage.error_of_string (Propane.Storage.error_to_string e)
            with
            | Ok e' ->
                Alcotest.(check bool) "equal" true (Propane.Error_model.equal e e')
            | Error msg -> Alcotest.fail msg)
          [
            Propane.Error_model.Bit_flip 7;
            Propane.Error_model.Stuck_at 65_535;
            Propane.Error_model.Offset (-12);
            Propane.Error_model.Replace_uniform;
          ]);
    Alcotest.test_case "error parser rejects junk" `Quick (fun () ->
        List.iter
          (fun junk ->
            match Propane.Storage.error_of_string junk with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" junk)
          [
            "bitflip"; "bitflip:x"; "nonsense"; "stuck:"; "multibit:";
            "multibit:x"; "burst:1"; "burst:1:x"; "noise:"; "delayed:4";
            "delayed:x:bitflip:0"; "intermittent:4:16";
            (* nested temporal wrappers must not decode *)
            "delayed:4:delayed:4:bitflip:0";
            "intermittent:4:16:delayed:4:bitflip:0";
          ]);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"error codec round-trips the full taxonomy" gen_error_model
         (fun e ->
           match
             Propane.Storage.error_of_string (Propane.Storage.error_to_string e)
           with
           | Ok e' -> Propane.Error_model.equal e e'
           | Error _ -> false));
    Alcotest.test_case "results round-trip through a file" `Quick (fun () ->
        let original =
          synthetic_results
            [
              ("x", "m=8000/v=40", 500, [ ("y", 501); ("z", 600) ]);
              ("w", "m=8000/v=40", 1_000, []);
            ]
        in
        let path = temp ".results" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            save_ok (Propane.Storage.save_results path original);
            match Propane.Storage.load_results path with
            | Error msg -> Alcotest.fail msg
            | Ok loaded ->
                Alcotest.(check string)
                  "sut" (Propane.Results.sut original)
                  (Propane.Results.sut loaded);
                Alcotest.(check int)
                  "count" (Propane.Results.count original)
                  (Propane.Results.count loaded);
                List.iter2
                  (fun (a : Propane.Results.outcome)
                       (b : Propane.Results.outcome) ->
                    Alcotest.(check string) "testcase" a.testcase b.testcase;
                    Alcotest.(check string)
                      "target" a.injection.Propane.Injection.target
                      b.injection.Propane.Injection.target;
                    Alcotest.(check bool)
                      "divergences" true
                      (a.divergences = b.divergences))
                  (Propane.Results.outcomes original)
                  (Propane.Results.outcomes loaded)));
    Alcotest.test_case "matrices round-trip through a file" `Quick (fun () ->
        let path = temp ".matrices" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let original = Arrestment.Model.paper_matrices () in
            save_ok (Propane.Storage.save_matrices path original);
            match Propane.Storage.load_matrices path with
            | Error msg -> Alcotest.fail msg
            | Ok loaded ->
                Propagation.String_map.iter
                  (fun name m ->
                    Alcotest.(check bool)
                      name true
                      (Propagation.Perm_matrix.equal m
                         (Propagation.String_map.find name loaded)))
                  original));
    Alcotest.test_case "loading garbage fails with a located message" `Quick
      (fun () ->
        let path = temp ".bad" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "not a propane file\n";
            close_out oc;
            (match Propane.Storage.load_results path with
            | Error msg ->
                Alcotest.(check bool) "mentions line" true
                  (contains_substring msg ":1:")
            | Ok _ -> Alcotest.fail "accepted garbage");
            match Propane.Storage.load_matrices path with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted garbage"));
    Alcotest.test_case "campaign results survive storage end to end" `Quick
      (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let path = temp ".results" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            save_ok (Propane.Storage.save_results path results);
            match Propane.Storage.load_results path with
            | Error msg -> Alcotest.fail msg
            | Ok loaded ->
                let matrix =
                  Propane.Estimator.estimate_matrix ~model:scale_model
                    ~results:loaded "SCALE"
                in
                Alcotest.(check (float 1e-9))
                  "estimate preserved" 0.75
                  (Propagation.Perm_matrix.get matrix ~input:1 ~output:1)));
    Alcotest.test_case "save refuses separator characters, gracefully" `Quick
      (fun () ->
        let results = Propane.Results.create ~sut:"tab\there" ~campaign:"c" in
        let path = temp ".results" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            match Propane.Storage.save_results path results with
            | Error msg ->
                Alcotest.(check bool)
                  "mentions separator" true
                  (contains_substring msg "separator")
            | Ok () -> Alcotest.fail "accepted a tab in the SUT name"));
    Alcotest.test_case "failed statuses round-trip through a results file"
      `Quick (fun () ->
        let results = Propane.Results.create ~sut:"s" ~campaign:"c" in
        let add status divs =
          Propane.Results.add results
            {
              Propane.Results.testcase = "t";
              injection =
                Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 5)
                  ~error:(Propane.Error_model.Bit_flip 1);
              divergences =
                List.map
                  (fun (signal, first_ms) ->
                    { Propane.Golden.signal; first_ms })
                  divs;
              status;
            }
        in
        add Propane.Results.Completed [ ("y", 6) ];
        add
          (Propane.Results.Crashed
             { at_ms = 7; reason = "Failure(\"boom: nested\")" })
          [ ("y", 7) ];
        add (Propane.Results.Hung { budget_ms = 100 }) [];
        let path = temp ".results" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            save_ok (Propane.Storage.save_results path results);
            match Propane.Storage.load_results path with
            | Error msg -> Alcotest.fail msg
            | Ok loaded ->
                Alcotest.(check int)
                  "crashed" 1
                  (Propane.Results.crashed_count loaded);
                Alcotest.(check int)
                  "hung" 1 (Propane.Results.hung_count loaded);
                List.iter2
                  (fun (a : Propane.Results.outcome)
                       (b : Propane.Results.outcome) ->
                    Alcotest.(check bool) "status" true (a.status = b.status);
                    Alcotest.(check bool)
                      "divergences" true
                      (a.divergences = b.divergences))
                  (Propane.Results.outcomes results)
                  (Propane.Results.outcomes loaded)));
    Alcotest.test_case "status parser rejects junk" `Quick (fun () ->
        List.iter
          (fun junk ->
            match Propane.Storage.status_of_string junk with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" junk)
          [
            "";
            "done";
            "crashed";
            "crashed:x:r";
            "crashed:-1:r";
            "hung";
            "hung:x";
            "hung:-1";
            "completed:extra";
          ]);
    Alcotest.test_case "a carriage return is a separator too" `Quick (fun () ->
        let results = Propane.Results.create ~sut:"cr\rname" ~campaign:"c" in
        let path = temp ".results" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            match Propane.Storage.save_results path results with
            | Error msg ->
                Alcotest.(check bool)
                  "mentions separator" true
                  (contains_substring msg "separator")
            | Ok () -> Alcotest.fail "accepted a CR in the SUT name"));
  ]

(* ------------------------------------------------------------------ *)
(* Journal + resume: the checkpointed campaign engine.                  *)

let journal_tests =
  let temp () = Filename.temp_file "propane_journal" ".journal" in
  let with_temp f =
    let path = temp () in
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  let outcome ?(divs = []) ?(status = Propane.Results.Completed) testcase
      target at_ms =
    {
      Propane.Results.testcase;
      injection =
        Propane.Injection.make ~target ~at:(Sim.Sim_time.of_ms at_ms)
          ~error:(Propane.Error_model.Bit_flip 3);
      divergences =
        List.map
          (fun (signal, first_ms) -> { Propane.Golden.signal; first_ms })
          divs;
      status;
    }
  in
  let ok = function
    | Ok v -> v
    | Error msg -> Alcotest.failf "unexpected journal error: %s" msg
  in
  let check_same_results msg a b =
    Alcotest.(check int)
      (msg ^ ": count") (Propane.Results.count a) (Propane.Results.count b);
    List.iter2
      (fun (x : Propane.Results.outcome) (y : Propane.Results.outcome) ->
        Alcotest.(check bool) (msg ^ ": outcome") true (compare x y = 0))
      (Propane.Results.outcomes a)
      (Propane.Results.outcomes b)
  in
  let append_fragment path fragment =
    let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
    output_string oc fragment;
    close_out oc
  in
  [
    Alcotest.test_case "outcomes round-trip through a journal" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:5L
                   ~total:3 ())
            in
            ok
              (Propane.Journal.append w ~index:0
                 (outcome ~divs:[ ("y", 12); ("z", 40) ] "t1" "x" 10));
            ok (Propane.Journal.append w ~index:2 (outcome "t2" "x" 20));
            Propane.Journal.close w;
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check string) "sut" "s" j.Propane.Journal.sut;
            Alcotest.(check string) "campaign" "c" j.Propane.Journal.campaign;
            Alcotest.(check int64) "seed" 5L j.Propane.Journal.seed;
            Alcotest.(check int) "total" 3 j.Propane.Journal.total;
            match j.Propane.Journal.entries with
            | [ (0, o0); (2, o2) ] ->
                Alcotest.(check bool)
                  "first" true
                  (compare o0 (outcome ~divs:[ ("y", 12); ("z", 40) ] "t1" "x" 10)
                  = 0);
                Alcotest.(check bool) "second" true (compare o2 (outcome "t2" "x" 20) = 0)
            | entries ->
                Alcotest.failf "expected entries 0 and 2, got %d"
                  (List.length entries)));
    Alcotest.test_case "an uncommitted trailing record is dropped" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:5L
                   ~total:3 ())
            in
            ok (Propane.Journal.append w ~index:1 (outcome "t" "x" 10));
            Propane.Journal.close w;
            append_fragment path "run\t2\ttrunc";
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check int)
              "committed records only" 1
              (List.length j.Propane.Journal.entries)));
    Alcotest.test_case "a malformed committed line is an error" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:5L
                   ~total:3 ())
            in
            Propane.Journal.close w;
            append_fragment path "run\tnonsense\n";
            match Propane.Journal.load path with
            | Error msg ->
                Alcotest.(check bool)
                  "line-numbered" true
                  (contains_substring msg ":6:")
            | Ok _ -> Alcotest.fail "accepted a malformed record"));
    Alcotest.test_case "bad magic is rejected" `Quick (fun () ->
        with_temp (fun path ->
            let oc = open_out path in
            output_string oc "not a journal\n";
            close_out oc;
            match Propane.Journal.load path with
            | Error msg ->
                Alcotest.(check bool)
                  "mentions magic" true
                  (contains_substring msg "bad magic")
            | Ok _ -> Alcotest.fail "accepted garbage"));
    Alcotest.test_case "separator characters are refused" `Quick (fun () ->
        with_temp (fun path ->
            (match
               Propane.Journal.create ~path ~sut:"tab\there" ~campaign:"c"
                 ~seed:1L ~total:1 ()
             with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted a tab in the SUT name");
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:1L
                   ~total:1 ())
            in
            (match Propane.Journal.append w ~index:0 (outcome "bad\ttc" "x" 1) with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "accepted a tab in the testcase");
            Propane.Journal.close w));
    Alcotest.test_case "a killed campaign resumes to identical results"
      `Quick (fun () ->
        with_temp (fun path ->
            let baseline =
              runner ~seed:3L (scaler_sut ()) scaler_campaign
            in
            (* "Kill" the campaign by raising out of the event callback
               after 10 completed runs; the journal keeps the 10. *)
            (try
               ignore
                 (runner ~seed:3L ~journal:path
                    ~on_event:(fun ev ->
                      match ev with
                      | Propane.Runner.Run_done { completed; _ }
                        when completed = 10 ->
                          raise Exit
                      | _ -> ())
                    (scaler_sut ()) scaler_campaign)
             with Exit -> ());
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check int)
              "journalled runs" 10
              (List.length j.Propane.Journal.entries);
            let skipped = ref (-1) in
            let resumed =
              runner ~seed:3L ~journal:path ~resume:true
                ~on_event:(fun ev ->
                  match ev with
                  | Propane.Runner.Started { skipped = s; _ } -> skipped := s
                  | _ -> ())
                (scaler_sut ()) scaler_campaign
            in
            Alcotest.(check int) "skipped" 10 !skipped;
            check_same_results "resumed" baseline resumed;
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check int)
              "journal complete" (Propane.Campaign.size scaler_campaign)
              (List.length j.Propane.Journal.entries)));
    Alcotest.test_case "resuming a complete journal runs nothing" `Quick
      (fun () ->
        with_temp (fun path ->
            let baseline =
              runner ~seed:3L ~journal:path (scaler_sut ())
                scaler_campaign
            in
            let fresh_runs = ref 0 and goldens = ref (-1) in
            let resumed =
              runner ~seed:3L ~journal:path ~resume:true
                ~on_event:(fun ev ->
                  match ev with
                  | Propane.Runner.Run_done _ -> incr fresh_runs
                  | Propane.Runner.Goldens_done { testcases } ->
                      goldens := testcases
                  | _ -> ())
                (scaler_sut ()) scaler_campaign
            in
            Alcotest.(check int) "no fresh runs" 0 !fresh_runs;
            Alcotest.(check int) "no goldens" 0 !goldens;
            check_same_results "replayed" baseline resumed));
    Alcotest.test_case "parallel runs journal every outcome" `Quick (fun () ->
        with_temp (fun path ->
            let serial =
              runner ~seed:3L (scaler_sut ()) scaler_campaign
            in
            let parallel =
              runner ~seed:3L ~jobs:2 ~journal:path (scaler_sut ())
                scaler_campaign
            in
            check_same_results "parallel" serial parallel;
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check int)
              "all journalled" (Propane.Campaign.size scaler_campaign)
              (List.length j.Propane.Journal.entries)));
    Alcotest.test_case "resume rejects a journal with another seed" `Quick
      (fun () ->
        with_temp (fun path ->
            ignore
              (runner ~seed:3L ~journal:path (scaler_sut ())
                 scaler_campaign);
            match
              runner ~seed:4L ~journal:path ~resume:true
                (scaler_sut ()) scaler_campaign
            with
            | exception Invalid_argument msg ->
                Alcotest.(check bool)
                  "mentions seed" true
                  (contains_substring msg "seed")
            | _ -> Alcotest.fail "accepted a mismatched seed"));
    Alcotest.test_case "failed outcomes round-trip, colons in reasons intact"
      `Quick (fun () ->
        with_temp (fun path ->
            let crashed =
              outcome ~divs:[ ("y", 12) ]
                ~status:
                  (Propane.Results.Crashed
                     { at_ms = 12; reason = "Failure(\"boom: nested: deep\")" })
                "t1" "x" 10
            in
            let hung =
              outcome
                ~status:(Propane.Results.Hung { budget_ms = 250 })
                "t2" "x" 20
            in
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:1L
                   ~total:2 ())
            in
            ok (Propane.Journal.append w ~index:0 crashed);
            ok (Propane.Journal.append w ~index:1 hung);
            Propane.Journal.close w;
            let j = ok (Propane.Journal.load path) in
            match j.Propane.Journal.entries with
            | [ (0, o0); (1, o1) ] ->
                Alcotest.(check bool)
                  "crash intact" true
                  (compare o0 crashed = 0);
                Alcotest.(check bool) "hang intact" true (compare o1 hung = 0)
            | e ->
                Alcotest.failf "expected 2 entries, got %d" (List.length e)));
    Alcotest.test_case "v1 run records load with status Completed" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:1L
                   ~total:1 ())
            in
            Propane.Journal.close w;
            append_fragment path "run\t0\tt1\tx\t10\tbitflip:3\t1\ty\t12\n";
            let j = ok (Propane.Journal.load path) in
            match j.Propane.Journal.entries with
            | [ (0, o) ] ->
                Alcotest.(check bool)
                  "completed" true
                  (o.Propane.Results.status = Propane.Results.Completed);
                Alcotest.(check (option int))
                  "divergence kept" (Some 12)
                  (Propane.Results.divergence_of o "y")
            | _ -> Alcotest.fail "expected one v1 entry"));
    Alcotest.test_case "a retried index supersedes the earlier record" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:1L
                   ~total:1 ())
            in
            ok
              (Propane.Journal.append w ~index:0
                 (outcome
                    ~status:
                      (Propane.Results.Crashed { at_ms = 12; reason = "boom" })
                    "t" "x" 10));
            ok
              (Propane.Journal.append w ~index:0
                 (outcome ~divs:[ ("y", 11) ] "t" "x" 10));
            Propane.Journal.close w;
            let j = ok (Propane.Journal.load path) in
            Alcotest.(check int)
              "both records kept" 2
              (List.length j.Propane.Journal.entries);
            let table = Propane.Journal.completed j in
            Alcotest.(check int) "one completed index" 1 (Hashtbl.length table);
            match Hashtbl.find_opt table 0 with
            | Some o ->
                Alcotest.(check bool)
                  "the retry wins" true
                  (o.Propane.Results.status = Propane.Results.Completed);
                Alcotest.(check (option int))
                  "retry divergences win" (Some 11)
                  (Propane.Results.divergence_of o "y")
            | None -> Alcotest.fail "index 0 missing"));
    Alcotest.test_case "a carriage return is refused" `Quick (fun () ->
        with_temp (fun path ->
            (match
               Propane.Journal.create ~path ~sut:"cr\rhere" ~campaign:"c"
                 ~seed:1L ~total:1 ()
             with
            | Error msg ->
                Alcotest.(check bool)
                  "mentions separator" true
                  (contains_substring msg "separator")
            | Ok _ -> Alcotest.fail "accepted a CR in the SUT name");
            let w =
              ok
                (Propane.Journal.create ~path ~sut:"s" ~campaign:"c" ~seed:1L
                   ~total:1 ())
            in
            (match
               Propane.Journal.append w ~index:0 (outcome "bad\rtc" "x" 1)
             with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "accepted a CR in the testcase");
            Propane.Journal.close w));
  ]

(* ------------------------------------------------------------------ *)

let telemetry_tests =
  let feed clock events =
    let t = Propane.Telemetry.create ~now:(fun () -> !clock) () in
    List.iter
      (fun (at, ev) ->
        clock := at;
        Propane.Telemetry.observe t ev)
      events;
    t
  in
  [
    Alcotest.test_case "throughput covers the injection phase only" `Quick
      (fun () ->
        let clock = ref 0.0 in
        let t =
          feed clock
            [
              (0.0, Propane.Runner.Started { total = 20; skipped = 10; jobs = 2 });
              (5.0, Propane.Runner.Goldens_done { testcases = 1 });
              ( 6.0,
                Propane.Runner.Run_done
                  {
                    index = 10;
                    worker = 0;
                    completed = 11;
                    total = 20;
                    status = Propane.Results.Completed;
                    retries = 0;
                  } );
              ( 7.0,
                Propane.Runner.Run_done
                  {
                    index = 11;
                    worker = 1;
                    completed = 12;
                    total = 20;
                    status = Propane.Results.Completed;
                    retries = 0;
                  } );
            ]
        in
        clock := 7.0;
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check int) "completed" 12 s.Propane.Telemetry.completed;
        Alcotest.(check int) "skipped" 10 s.Propane.Telemetry.skipped;
        (* 2 fresh runs in the 2 s since Goldens_done: golden time and
           journal-replayed runs do not skew the rate. *)
        Alcotest.(check (float 1e-9)) "rate" 1.0 s.Propane.Telemetry.runs_per_sec;
        (match s.Propane.Telemetry.eta_s with
        | Some eta -> Alcotest.(check (float 1e-9)) "eta" 8.0 eta
        | None -> Alcotest.fail "expected an ETA");
        Alcotest.(check (array int)) "per-worker" [| 1; 1 |]
          s.Propane.Telemetry.per_worker);
    Alcotest.test_case "eta unknown before the first run" `Quick (fun () ->
        let clock = ref 0.0 in
        let t =
          feed clock
            [
              (0.0, Propane.Runner.Started { total = 5; skipped = 0; jobs = 1 });
              (1.0, Propane.Runner.Goldens_done { testcases = 1 });
            ]
        in
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check bool)
          "no eta" true
          (s.Propane.Telemetry.eta_s = None));
    Alcotest.test_case "elapsed freezes at Finished" `Quick (fun () ->
        let clock = ref 0.0 in
        let t =
          feed clock
            [
              (0.0, Propane.Runner.Started { total = 1; skipped = 0; jobs = 1 });
              (1.0, Propane.Runner.Goldens_done { testcases = 1 });
              ( 3.0,
                Propane.Runner.Run_done
                  {
                    index = 0;
                    worker = 0;
                    completed = 1;
                    total = 1;
                    status = Propane.Results.Completed;
                    retries = 0;
                  } );
              (3.0, Propane.Runner.Finished { completed = 1; total = 1 });
            ]
        in
        clock := 100.0;
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check (float 1e-9)) "elapsed" 2.0 s.Propane.Telemetry.elapsed_s;
        match s.Propane.Telemetry.eta_s with
        | Some eta -> Alcotest.(check (float 1e-9)) "eta done" 0.0 eta
        | None -> Alcotest.fail "expected eta 0");
    Alcotest.test_case "json summary carries every field" `Quick (fun () ->
        let clock = ref 0.0 in
        let t =
          feed clock
            [
              (0.0, Propane.Runner.Started { total = 2; skipped = 1; jobs = 2 });
              (0.0, Propane.Runner.Goldens_done { testcases = 1 });
              ( 2.0,
                Propane.Runner.Run_done
                  {
                    index = 1;
                    worker = 1;
                    completed = 2;
                    total = 2;
                    status = Propane.Results.Crashed { at_ms = 7; reason = "boom" };
                    retries = 1;
                  } );
              (2.0, Propane.Runner.Finished { completed = 2; total = 2 });
            ]
        in
        let json = Propane.Telemetry.to_json (Propane.Telemetry.snapshot t) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains_substring json needle))
          [
            {|"total":2|};
            {|"completed":2|};
            {|"skipped":1|};
            {|"jobs":2|};
            {|"elapsed_s":2.000|};
            {|"runs_per_sec":0.5|};
            {|"eta_s":0.0|};
            {|"per_worker":[0,1]|};
            {|"crashed":1|};
            {|"hung":0|};
            {|"retried":1|};
          ]);
    Alcotest.test_case "a clock stepping backwards cannot corrupt telemetry"
      `Quick (fun () ->
        let clock = ref 10.0 in
        let t =
          feed clock
            [
              (10.0, Propane.Runner.Started { total = 4; skipped = 0; jobs = 1 });
              (11.0, Propane.Runner.Goldens_done { testcases = 1 });
              (* NTP slew: the wall clock jumps back mid-campaign. *)
              ( 2.0,
                Propane.Runner.Run_done
                  {
                    index = 0;
                    worker = 0;
                    completed = 1;
                    total = 4;
                    status = Propane.Results.Completed;
                    retries = 0;
                  } );
            ]
        in
        clock := 3.0;
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check bool)
          "elapsed non-negative" true
          (s.Propane.Telemetry.elapsed_s >= 0.0);
        (match s.Propane.Telemetry.eta_s with
        | Some eta ->
            Alcotest.(check bool) "eta non-negative" true (eta >= 0.0)
        | None -> ());
        (* Clock recovers: elapsed resumes from the clamped value. *)
        clock := 12.5;
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check (float 1e-9))
          "elapsed after recovery" 1.5 s.Propane.Telemetry.elapsed_s);
    Alcotest.test_case "workers are labelled by host and pid" `Quick
      (fun () ->
        let clock = ref 0.0 in
        let t =
          feed clock
            [
              (0.0, Propane.Runner.Started { total = 4; skipped = 0; jobs = 1 });
              (0.0, Propane.Runner.Goldens_done { testcases = 0 });
              ( 0.0,
                Propane.Runner.Worker_attached
                  { worker = 1; host = "node\"7"; pid = 4242 } );
              ( 1.0,
                Propane.Runner.Run_done
                  {
                    index = 0;
                    worker = 1;
                    completed = 1;
                    total = 4;
                    status = Propane.Results.Completed;
                    retries = 0;
                  } );
            ]
        in
        let s = Propane.Telemetry.snapshot t in
        Alcotest.(check (array string))
          "labels: local default, then attached host/pid"
          [| "domain-0"; "node\"7/4242" |]
          s.Propane.Telemetry.worker_labels;
        Alcotest.(check (array int))
          "per-worker grew with the attachment" [| 0; 1 |]
          s.Propane.Telemetry.per_worker;
        let json = Propane.Telemetry.to_json s in
        Alcotest.(check bool)
          "labels in json, escaped" true
          (contains_substring json
             {|"workers":["domain-0","node\"7/4242"]|}));
  ]

(* ------------------------------------------------------------------ *)
(* Live incremental analysis: Estimator.Stream + Analysis.Engine fed
   one run at a time must agree with the batch pipeline, and the
   stop-when rules must leave a resumable journal behind. *)

let live_tests =
  let with_temp f =
    let path = Filename.temp_file "propane_live" ".journal" in
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  let check_same_results msg a b =
    Alcotest.(check int)
      (msg ^ ": count") (Propane.Results.count a) (Propane.Results.count b);
    List.iter2
      (fun (x : Propane.Results.outcome) (y : Propane.Results.outcome) ->
        Alcotest.(check bool) (msg ^ ": outcome") true (compare x y = 0))
      (Propane.Results.outcomes a)
      (Propane.Results.outcomes b)
  in
  let batch_matrices results =
    match Propane.Estimator.estimate_all ~model:scale_model results with
    | Ok matrices -> matrices
    | Error msg -> Alcotest.failf "batch estimation failed: %s" msg
  in
  let check_same_matrices msg a b =
    Propagation.String_map.iter
      (fun name am ->
        match Propagation.String_map.find_opt name b with
        | Some bm ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s estimates" msg name)
              true
              (Propagation.Perm_matrix.equal_estimates ~eps:0.0 am bm)
        | None -> Alcotest.failf "%s: %s missing" msg name)
      a;
    Alcotest.(check int)
      (msg ^ ": module count")
      (Propagation.String_map.cardinal a)
      (Propagation.String_map.cardinal b)
  in
  let stream_of results =
    let stream = Propane.Estimator.Stream.create ~model:scale_model () in
    List.iter
      (Propane.Estimator.Stream.observe stream)
      (Propane.Results.outcomes results);
    stream
  in
  [
    Alcotest.test_case "stream counts equal batch estimation" `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let stream = stream_of results in
        Alcotest.(check int)
          "runs observed"
          (Propane.Results.count results)
          (Propane.Estimator.Stream.runs_observed stream);
        check_same_matrices "stream vs batch"
          (batch_matrices results)
          (Propane.Estimator.Stream.matrices stream));
    Alcotest.test_case "stream is order-independent" `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let stream = Propane.Estimator.Stream.create ~model:scale_model () in
        List.iter
          (Propane.Estimator.Stream.observe stream)
          (List.rev (Propane.Results.outcomes results));
        check_same_matrices "reversed vs batch"
          (batch_matrices results)
          (Propane.Estimator.Stream.matrices stream));
    Alcotest.test_case "drain_dirty reports a changed module exactly once"
      `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let stream = stream_of results in
        (match Propane.Estimator.Stream.drain_dirty stream with
        | [ ("SCALE", _) ] -> ()
        | other -> Alcotest.failf "expected [SCALE], got %d" (List.length other));
        Alcotest.(check int)
          "drained" 0
          (List.length (Propane.Estimator.Stream.drain_dirty stream)));
    Alcotest.test_case "engine fed one run at a time equals batch analysis"
      `Quick (fun () ->
        let results =
          runner ~seed:7L (scaler_sut ()) scaler_campaign
        in
        let stream = Propane.Estimator.Stream.create ~model:scale_model () in
        let engine = Propagation.Analysis.Engine.create scale_model in
        Propagation.String_map.iter
          (fun name m -> Propagation.Analysis.Engine.update engine name m)
          (Propane.Estimator.Stream.matrices stream);
        List.iter
          (fun outcome ->
            Propane.Estimator.Stream.observe stream outcome;
            List.iter
              (fun (name, m) ->
                Propagation.Analysis.Engine.update engine name m)
              (Propane.Estimator.Stream.drain_dirty stream);
            ignore (Propagation.Analysis.Engine.snapshot_exn engine))
          (Propane.Results.outcomes results);
        let incremental = Propagation.Analysis.Engine.snapshot_exn engine in
        let batch =
          Propagation.Analysis.run_exn scale_model (batch_matrices results)
        in
        Alcotest.(check string)
          "summaries byte-identical"
          (Fmt.str "%a" Propagation.Analysis.pp_summary batch)
          (Fmt.str "%a" Propagation.Analysis.pp_summary incremental));
    Alcotest.test_case "live analysis digest tracks the campaign" `Quick
      (fun () ->
        let live =
          Propane.Live.create ~model:scale_model
            ~targets:scaler_campaign.Propane.Campaign.targets ()
        in
        let results =
          runner ~seed:7L ~live (scaler_sut ()) scaler_campaign
        in
        let digest = Propane.Live.digest live in
        Alcotest.(check int)
          "all runs observed"
          (Propane.Results.count results)
          digest.Propane.Live.runs_observed;
        Alcotest.(check bool)
          "interval narrowed" true
          (digest.Propane.Live.max_ci_width < 0.5);
        Alcotest.(check int) "one module" 1 digest.Propane.Live.module_count;
        match Propane.Live.snapshot live with
        | Ok analysis ->
            let batch =
              Propagation.Analysis.run_exn scale_model (batch_matrices results)
            in
            Alcotest.(check string)
              "live snapshot equals batch"
              (Fmt.str "%a" Propagation.Analysis.pp_summary batch)
              (Fmt.str "%a" Propagation.Analysis.pp_summary analysis)
        | Error msg -> Alcotest.failf "snapshot failed: %s" msg);
    Alcotest.test_case "stop_when without live is rejected" `Quick (fun () ->
        match
          runner
            ~stop_when:(`Rankings_stable 3)
            (scaler_sut ()) scaler_campaign
        with
        | exception Invalid_argument msg ->
            Alcotest.(check bool)
              "mentions live" true
              (contains_substring msg "live")
        | _ -> Alcotest.fail "accepted stop_when without live");
    Alcotest.test_case "rankings-stable stops the serial runner early" `Quick
      (fun () ->
        let run () =
          let live =
            Propane.Live.create ~model:scale_model
              ~targets:scaler_campaign.Propane.Campaign.targets ()
          in
          runner ~seed:7L ~live ~stop_when:(`Rankings_stable 5)
            (scaler_sut ()) scaler_campaign
        in
        let first = run () in
        Alcotest.(check bool)
          "stopped early" true
          (Propane.Results.count first < Propane.Campaign.size scaler_campaign);
        Alcotest.(check bool)
          "saw some runs" true
          (Propane.Results.count first >= 5);
        (* The serial stop point is deterministic: same seed, same rule,
           same prefix of the campaign. *)
        check_same_results "deterministic" first (run ()));
    Alcotest.test_case "ci-width rule stops once the interval is tight" `Quick
      (fun () ->
        let live =
          Propane.Live.create ~model:scale_model
            ~targets:scaler_campaign.Propane.Campaign.targets ()
        in
        let results =
          runner ~seed:7L ~live ~stop_when:(`Ci_width 0.45)
            (scaler_sut ()) scaler_campaign
        in
        Alcotest.(check bool)
          "stopped early" true
          (Propane.Results.count results
          < Propane.Campaign.size scaler_campaign);
        let digest = Propane.Live.digest live in
        Alcotest.(check bool)
          "rule satisfied" true
          (digest.Propane.Live.max_ci_width <= 0.45));
    Alcotest.test_case "early-stopped journal resumes to the full campaign"
      `Quick (fun () ->
        with_temp (fun path ->
            let live =
              Propane.Live.create ~model:scale_model
                ~targets:scaler_campaign.Propane.Campaign.targets ()
            in
            let stopped =
              runner ~seed:7L ~journal:path ~live
                ~stop_when:(`Rankings_stable 5)
                (scaler_sut ()) scaler_campaign
            in
            Alcotest.(check bool)
              "stopped early" true
              (Propane.Results.count stopped
              < Propane.Campaign.size scaler_campaign);
            let resumed =
              runner ~seed:7L ~journal:path ~resume:true
                (scaler_sut ()) scaler_campaign
            in
            let baseline =
              runner ~seed:7L (scaler_sut ()) scaler_campaign
            in
            check_same_results "resumed equals uninterrupted" baseline resumed));
    Alcotest.test_case "resuming feeds journalled runs back into the analysis"
      `Quick (fun () ->
        with_temp (fun path ->
            let mk_live () =
              Propane.Live.create ~model:scale_model
                ~targets:scaler_campaign.Propane.Campaign.targets ()
            in
            let live = mk_live () in
            let stopped =
              runner ~seed:7L ~journal:path ~live
                ~stop_when:(`Rankings_stable 5)
                (scaler_sut ()) scaler_campaign
            in
            (* A fresh Live attached to a resume run must replay the
               journalled prefix before executing anything, so its run
               count picks up where the first left off. *)
            let live2 = mk_live () in
            let resumed =
              runner ~seed:7L ~journal:path ~resume:true
                ~live:live2 (scaler_sut ()) scaler_campaign
            in
            let digest = Propane.Live.digest live2 in
            Alcotest.(check int)
              "observed everything"
              (Propane.Results.count resumed)
              digest.Propane.Live.runs_observed;
            Alcotest.(check bool)
              "resumed past the stop point" true
              (Propane.Results.count resumed > Propane.Results.count stopped)));
    Alcotest.test_case "parallel runner with live analysis matches serial"
      `Quick (fun () ->
        let serial =
          runner ~seed:9L (scaler_sut ()) scaler_campaign
        in
        let live =
          Propane.Live.create ~model:scale_model
            ~targets:scaler_campaign.Propane.Campaign.targets ()
        in
        (* A rule that can never fire: the analysis rides along without
           perturbing the schedule or the results. *)
        let parallel =
          runner ~seed:9L ~jobs:3 ~live
            ~stop_when:(`Rankings_stable 1_000_000)
            (scaler_sut ()) scaler_campaign
        in
        check_same_results "parallel+live" serial parallel;
        Alcotest.(check int)
          "observed all runs"
          (Propane.Results.count parallel)
          (Propane.Live.digest live).Propane.Live.runs_observed);
    Alcotest.test_case "parallel stop-when journals a resumable prefix" `Quick
      (fun () ->
        (* An unthrottled scaler run lasts microseconds, so three
           workers can drain the whole campaign before the coordinator
           observes enough runs to fire the rule (the stop point in
           parallel mode depends on scheduling, by design).  Slow each
           step down so the adaptive stop demonstrably acts. *)
        let slow_scaler_sut () =
          let base = scaler_sut () in
          {
            base with
            Propane.Sut.instantiate =
              (fun tc ->
                let inner = base.Propane.Sut.instantiate tc in
                {
                  inner with
                  Propane.Sut.step =
                    (fun () ->
                      Unix.sleepf 5e-5;
                      inner.Propane.Sut.step ());
                });
          }
        in
        with_temp (fun path ->
            let live =
              Propane.Live.create ~model:scale_model
                ~targets:scaler_campaign.Propane.Campaign.targets ()
            in
            let stopped =
              runner ~seed:7L ~jobs:3 ~journal:path ~live
                ~stop_when:(`Rankings_stable 5)
                (slow_scaler_sut ()) scaler_campaign
            in
            if
              Propane.Results.count stopped
              >= Propane.Campaign.size scaler_campaign
            then
              Alcotest.failf "did not stop early: %d of %d"
                (Propane.Results.count stopped)
                (Propane.Campaign.size scaler_campaign);
            (* The prefix resumes with the plain (fast) scaler: journal
               compatibility only depends on sut/campaign names. *)
            let resumed =
              runner ~seed:7L ~journal:path ~resume:true
                (scaler_sut ()) scaler_campaign
            in
            let baseline =
              runner ~seed:7L (scaler_sut ()) scaler_campaign
            in
            check_same_results "resumed equals uninterrupted" baseline resumed));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"stream equals batch on any prefix of the campaign" ~count:20
         QCheck2.Gen.(int_range 1 80)
         (fun prefix ->
           let results =
             runner ~seed:7L (scaler_sut ()) scaler_campaign
           in
           let outcomes = Propane.Results.outcomes results in
           let prefix = min prefix (List.length outcomes) in
           let partial =
             Propane.Results.create ~sut:"scaler" ~campaign:"scaler"
           in
           let stream =
             Propane.Estimator.Stream.create ~model:scale_model ()
           in
           List.iteri
             (fun i o ->
               if i < prefix then begin
                 Propane.Results.add partial o;
                 Propane.Estimator.Stream.observe stream o
               end)
             outcomes;
           let batch =
             Propane.Estimator.estimate_matrix ~model:scale_model
               ~results:partial "SCALE"
           in
           let streamed =
             Propagation.String_map.find "SCALE"
               (Propane.Estimator.Stream.matrices stream)
           in
           Propagation.Perm_matrix.equal_estimates ~eps:0.0 batch streamed));
  ]

(* ------------------------------------------------------------------ *)
(* Severity on the scaler SUT: y = x >> 4; mission "fails" when the
   final y is off by more than 1000. *)

let severity_tests =
  let mission_failed ~golden ~run =
    let final traces =
      Propane.Trace.get
        (Propane.Trace_set.trace traces "y")
        (Propane.Trace_set.duration_ms traces - 1)
    in
    abs (final golden - final run) > 1_000
  in
  [
    Alcotest.test_case "verdict bins partition the runs" `Quick (fun () ->
        let reports =
          Propane.Severity.assess ~outputs:[ "y" ] ~mission_failed
            (scaler_sut ()) scaler_campaign
        in
        match reports with
        | [ r ] ->
            Alcotest.(check string) "target" "x" r.Propane.Severity.target;
            Alcotest.(check int) "runs" 80 r.Propane.Severity.runs;
            Alcotest.(check int)
              "partition" 80
              (List.fold_left
                 (fun acc v -> acc + Propane.Severity.count r v)
                 0 Propane.Severity.verdicts)
        | _ -> Alcotest.fail "expected one report");
    Alcotest.test_case "masked flips land in no-effect" `Quick (fun () ->
        (* x is rewritten by the stimulus every ms but the trap fires
           at y's read, so the 4 low bits are the only masked ones. *)
        let reports =
          Propane.Severity.assess ~outputs:[ "y" ] ~mission_failed
            (scaler_sut ()) scaler_campaign
        in
        match reports with
        | [ r ] ->
            (* 4 of 16 bits never reach y: x diverges but y does not,
               so they are internal-only, never no-effect (the injected
               trace itself diverges). *)
            Alcotest.(check int) "no effect" 0 r.Propane.Severity.no_effect;
            Alcotest.(check int)
              "internal only" 20 r.Propane.Severity.internal_only
        | _ -> Alcotest.fail "expected one report");
    Alcotest.test_case "high-bit flips fail the mission" `Quick (fun () ->
        let reports =
          Propane.Severity.assess ~outputs:[ "y" ] ~mission_failed
            (scaler_sut ()) scaler_campaign
        in
        match reports with
        | [ r ] ->
            (* flips of x bits 14-15 shift y by >= 1024 permanently?  y
               follows x afresh each ms, so only the injected sample is
               wrong: the final y is clean and nothing fails the
               mission. *)
            Alcotest.(check int)
              "mission failures" 0 r.Propane.Severity.mission_failure
        | _ -> Alcotest.fail "expected one report");
    Alcotest.test_case "crashing runs land in mission failure" `Quick (fun () ->
        let sut = Propane.Fault.wrap ~crash_after_ms:0 (scaler_sut ()) in
        let reports =
          Propane.Severity.assess ~outputs:[ "y" ] ~mission_failed sut
            scaler_campaign
        in
        match reports with
        | [ r ] ->
            Alcotest.(check int) "runs" 80 r.Propane.Severity.runs;
            Alcotest.(check int)
              "all mission failures" 80 r.Propane.Severity.mission_failure
        | _ -> Alcotest.fail "expected one report");
    Alcotest.test_case "excluded failures drop out of the report" `Quick
      (fun () ->
        let sut = Propane.Fault.wrap ~crash_after_ms:0 (scaler_sut ()) in
        let reports =
          Propane.Severity.assess ~on_failure:`Exclude ~outputs:[ "y" ]
            ~mission_failed sut scaler_campaign
        in
        Alcotest.(check int) "no rows" 0 (List.length reports));
  ]

(* ------------------------------------------------------------------ *)
(* Fault tolerance: crashing and hanging SUTs as first-class outcomes. *)

let fault_tests =
  let crashing ?only_testcase ?(after = 0) () =
    Propane.Fault.wrap ?only_testcase ~crash_after_ms:after (scaler_sut ())
  in
  let tiny_campaign ~bit =
    Propane.Campaign.make ~name:"tiny" ~targets:[ "x" ]
      ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
      ~times:[ Sim.Sim_time.of_ms 10 ]
      ~errors:[ Propane.Error_model.Bit_flip bit ]
  in
  let check_same_results msg a b =
    Alcotest.(check int)
      (msg ^ ": count") (Propane.Results.count a) (Propane.Results.count b);
    List.iter2
      (fun (x : Propane.Results.outcome) (y : Propane.Results.outcome) ->
        Alcotest.(check bool) (msg ^ ": outcome") true (compare x y = 0))
      (Propane.Results.outcomes a)
      (Propane.Results.outcomes b)
  in
  [
    Alcotest.test_case "a crashing SUT yields Crashed outcomes, not an abort"
      `Quick (fun () ->
        let results =
          runner ~seed:3L (crashing ()) scaler_campaign
        in
        let size = Propane.Campaign.size scaler_campaign in
        Alcotest.(check int)
          "campaign completed" size (Propane.Results.count results);
        Alcotest.(check int)
          "all crashed" size
          (Propane.Results.crashed_count results);
        List.iter
          (fun (o : Propane.Results.outcome) ->
            let inject_at =
              Sim.Sim_time.to_ms o.injection.Propane.Injection.at
            in
            match o.status with
            | Propane.Results.Crashed { at_ms; reason } ->
                Alcotest.(check int) "at the injection" inject_at at_ms;
                Alcotest.(check bool)
                  "reason rendered" true
                  (contains_substring reason "simulated crash");
                (* Nothing was sampled before the crash, so the tail
                   rule marks both signals diverged at the crash
                   instant. *)
                Alcotest.(check (option int))
                  "x diverged" (Some inject_at)
                  (Propane.Results.divergence_of o "x");
                Alcotest.(check (option int))
                  "y diverged" (Some inject_at)
                  (Propane.Results.divergence_of o "y")
            | s ->
                Alcotest.failf "expected Crashed, got %s"
                  (Fmt.str "%a" Propane.Results.pp_status s))
          (Propane.Results.outcomes results));
    Alcotest.test_case "a late crash keeps the divergences it saw" `Quick
      (fun () ->
        let sut = crashing ~after:5 () in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          (* A low bit: x diverges at the injection but y never follows,
             so y's divergence can only come from the crash cutting the
             run short. *)
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 2)
        in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        (match outcome.Propane.Results.status with
        | Propane.Results.Crashed { at_ms; _ } ->
            Alcotest.(check int) "five ms after the injection" 15 at_ms
        | s ->
            Alcotest.failf "expected Crashed, got %s"
              (Fmt.str "%a" Propane.Results.pp_status s));
        Alcotest.(check (option int))
          "x diverged at the injection" (Some 10)
          (Propane.Results.divergence_of outcome "x");
        Alcotest.(check (option int))
          "y diverged at the crash" (Some 15)
          (Propane.Results.divergence_of outcome "y"));
    Alcotest.test_case "a hanging run is cut off and carries no divergences"
      `Quick (fun () ->
        let sut =
          Propane.Fault.wrap ~hang_after_ms:0 ~hang_step_wall_ms:40
            (scaler_sut ())
        in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let injection =
          (* A low bit again: without saturation only the watchdog can
             end the run. *)
          Propane.Injection.make ~target:"x" ~at:(Sim.Sim_time.of_ms 10)
            ~error:(Propane.Error_model.Bit_flip 2)
        in
        let outcome =
          Propane.Runner.run_experiment ~run_timeout_ms:60 sut
            ~golden:(Propane.Golden.freeze golden) tc injection
        in
        (match outcome.Propane.Results.status with
        | Propane.Results.Hung { budget_ms } ->
            Alcotest.(check int) "budget" 60 budget_ms
        | s ->
            Alcotest.failf "expected Hung, got %s"
              (Fmt.str "%a" Propane.Results.pp_status s));
        Alcotest.(check int)
          "divergences discarded" 0
          (List.length outcome.Propane.Results.divergences));
    Alcotest.test_case "a hung campaign run is counted, not fatal" `Quick
      (fun () ->
        let sut =
          Propane.Fault.wrap ~hang_after_ms:0 ~hang_step_wall_ms:40
            (scaler_sut ())
        in
        let hung_events = ref 0 in
        let results =
          runner ~seed:3L ~run_timeout_ms:60
            ~on_event:(function
              | Propane.Runner.Run_done { status = Propane.Results.Hung _; _ }
                ->
                  incr hung_events
              | _ -> ())
            sut (tiny_campaign ~bit:2)
        in
        Alcotest.(check int)
          "hung count" 1
          (Propane.Results.hung_count results);
        Alcotest.(check int) "hung event" 1 !hung_events);
    Alcotest.test_case "a transient crash is healed by a retry" `Quick
      (fun () ->
        let base = scaler_sut () in
        let injected_instances = ref 0 in
        let flaky =
          {
            base with
            Propane.Sut.instantiate =
              (fun tc ->
                let inner = base.Propane.Sut.instantiate tc in
                let armed = ref false in
                let inject name f =
                  if not !armed then begin
                    armed := true;
                    incr injected_instances
                  end;
                  inner.Propane.Sut.inject name f
                in
                let step () =
                  (* Only the first injected instance misbehaves: the
                     retry (a fresh instance) runs clean. *)
                  if !armed && !injected_instances = 1 then
                    failwith "transient fault"
                  else inner.Propane.Sut.step ()
                in
                { inner with Propane.Sut.step; inject });
          }
        in
        let seen = ref [] in
        let results =
          runner ~seed:3L ~retries:3
            ~on_event:(function
              | Propane.Runner.Run_done { status; retries; _ } ->
                  seen := (status, retries) :: !seen
              | _ -> ())
            flaky (tiny_campaign ~bit:15)
        in
        Alcotest.(check int)
          "no failures kept" 0
          (Propane.Results.failed_count results);
        match !seen with
        | [ (Propane.Results.Completed, 1) ] -> ()
        | _ -> Alcotest.fail "expected one completed run after one retry");
    Alcotest.test_case "deterministic crashes exhaust the retry budget" `Quick
      (fun () ->
        let total_retries = ref 0 and failed_runs = ref 0 in
        let results =
          runner ~seed:3L ~retries:2
            ~on_event:(function
              | Propane.Runner.Run_done { status; retries; _ } ->
                  total_retries := !total_retries + retries;
                  if Propane.Results.is_failed status then incr failed_runs
              | _ -> ())
            (crashing ()) scaler_campaign
        in
        let size = Propane.Campaign.size scaler_campaign in
        Alcotest.(check int)
          "every run retried twice" (2 * size) !total_retries;
        Alcotest.(check int) "every run still failed" size !failed_runs;
        Alcotest.(check int)
          "crashed in results" size
          (Propane.Results.crashed_count results));
    Alcotest.test_case "the chaos wrapper can target one testcase" `Quick
      (fun () ->
        let sut = crashing ~only_testcase:"other" () in
        let results = runner ~seed:3L sut scaler_campaign in
        Alcotest.(check int)
          "nothing crashed" 0
          (Propane.Results.failed_count results));
    Alcotest.test_case "fail-fast aborts after journalling the failed run"
      `Quick (fun () ->
        let path = Filename.temp_file "propane_fault" ".journal" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            (match
               runner ~seed:3L ~journal:path ~fail_fast:true
                 (crashing ()) scaler_campaign
             with
            | exception Propane.Runner.Failed_run { index; outcome } ->
                Alcotest.(check int) "first experiment" 0 index;
                Alcotest.(check bool)
                  "failed status" true
                  (Propane.Results.is_failed outcome.Propane.Results.status)
            | _ -> Alcotest.fail "expected Failed_run");
            match Propane.Journal.load path with
            | Error msg -> Alcotest.failf "journal: %s" msg
            | Ok j -> (
                match j.Propane.Journal.entries with
                | [ (0, o) ] ->
                    Alcotest.(check bool)
                      "journalled as failed" true
                      (Propane.Results.is_failed o.Propane.Results.status)
                | e ->
                    Alcotest.failf "expected one journalled run, got %d"
                      (List.length e))));
    Alcotest.test_case
      "parallel fail-fast stops promptly and resumes identically" `Quick
      (fun () ->
        let path = Filename.temp_file "propane_fault" ".journal" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let baseline =
              runner ~seed:3L (crashing ()) scaler_campaign
            in
            (match
               runner ~seed:3L ~jobs:4 ~journal:path
                 ~fail_fast:true (crashing ()) scaler_campaign
             with
            | exception Propane.Runner.Failed_run _ -> ()
            | _ -> Alcotest.fail "expected Failed_run");
            let j =
              match Propane.Journal.load path with
              | Ok j -> j
              | Error msg -> Alcotest.failf "journal: %s" msg
            in
            let journalled = List.length j.Propane.Journal.entries in
            (* The poisoned cursor stops workers from taking new runs:
               at most the runs already in flight (one per worker) get
               journalled. *)
            Alcotest.(check bool)
              "aborted promptly" true
              (journalled >= 1 && journalled <= 4);
            let resumed =
              runner ~seed:3L ~journal:path ~resume:true
                (crashing ()) scaler_campaign
            in
            check_same_results "resumed" baseline resumed));
  ]

(* ------------------------------------------------------------------ *)
(* Runner.Config: the packaged campaign options, their wire codec and
   the deprecated flat-argument wrapper.                               *)

let config_tests =
  let module C = Propane.Runner.Config in
  let roundtrip name c =
    Alcotest.test_case name `Quick (fun () ->
        match C.decode (C.encode c) with
        | Ok c' -> Alcotest.(check bool) "round-trips" true (c = c')
        | Error msg -> Alcotest.failf "decode failed: %s" msg)
  in
  [
    roundtrip "encode/decode round-trips the default" C.default;
    roundtrip "encode/decode round-trips a fully customised config"
      (C.make ~max_ms:123 ~seed:99L ~truncate_after_ms:7 ~run_timeout_ms:44
         ~retries:3 ~fail_fast:true ~jobs:5 ~journal_batch:17
         ~keep_traces:true ~stop_when:(`Rankings_stable 9) ());
    roundtrip "ci-width stop rules survive the codec bit-exactly"
      (C.make ~stop_when:(`Ci_width 0.12345678901234567) ());
    Alcotest.test_case "journal and resume stay host-local" `Quick (fun () ->
        (* The codec ships configs to worker processes on other
           machines; a coordinator-side journal path must not travel. *)
        let c = C.make ~journal:"/tmp/x.journal" ~resume:true ~jobs:2 () in
        match C.decode (C.encode c) with
        | Error msg -> Alcotest.failf "decode failed: %s" msg
        | Ok c' ->
            Alcotest.(check bool)
              "journal dropped" true
              (c'.C.journal = None && not c'.C.resume);
            Alcotest.(check int) "jobs kept" 2 c'.C.jobs);
    Alcotest.test_case "decode rejects unknown fields" `Quick (fun () ->
        match C.decode "max_ms=5,flux_capacitor=1" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted an unknown field");
    Alcotest.test_case "decode rejects malformed values" `Quick (fun () ->
        match C.decode "jobs=banana" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a malformed value");
    Alcotest.test_case "validate rejects bad combinations" `Quick (fun () ->
        let bad c =
          match C.validate c with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "validate accepted a bad config"
        in
        bad (C.make ~jobs:0 ());
        bad (C.make ~retries:(-1) ());
        bad (C.make ~run_timeout_ms:0 ());
        bad (C.make ~journal_batch:0 ());
        bad (C.make ~resume:true ());
        match C.validate C.default with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "default rejected: %s" msg);
    Alcotest.test_case "stop rule codec round-trips both kinds" `Quick
      (fun () ->
        List.iter
          (fun rule ->
            match Propane.Live.rule_of_string (Propane.Live.rule_to_string rule)
            with
            | Ok rule' ->
                Alcotest.(check bool) "round-trips" true (rule = rule')
            | Error msg -> Alcotest.failf "rule codec failed: %s" msg)
          [ `Rankings_stable 17; `Ci_width 0.05; `Ci_width 0.3333333333333333 ]);
    Alcotest.test_case "stop rule parser rejects nonsense" `Quick (fun () ->
        List.iter
          (fun s ->
            match Propane.Live.rule_of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ ""; "rankings-stable:0"; "ci-width:0"; "ci-width:1.5"; "bogus:3" ]);
  ]

(* ------------------------------------------------------------------ *)
(* The tentpole invariant, property-tested: whatever the journal batch
   size and domain count — and even across a kill mid-batch followed by
   a resume under a different batch size and domain count — the journal
   file ends up byte-identical to the serial, unbatched one.           *)

let journal_identity_tests =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let reference_bytes =
    lazy
      (let path = Filename.temp_file "propane_refjournal" ".journal" in
       let (_ : Propane.Results.t) =
         runner ~seed:7L ~journal:path ~journal_batch:1 ~jobs:1 (scaler_sut ())
           scaler_campaign
       in
       let bytes = read_file path in
       Sys.remove path;
       bytes)
  in
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 1 64) (int_range 1 4)
        (float_bound_inclusive 1.0)
        (tup2 (int_range 1 64) (int_range 1 4)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:12
         ~name:"journal bytes invariant under batch x jobs, kill + resume"
         gen
         (fun (batch, jobs, cut_frac, (batch', jobs')) ->
           let path = Filename.temp_file "propane_qjournal" ".journal" in
           Fun.protect
             ~finally:(fun () -> Sys.remove path)
             (fun () ->
               let reference = Lazy.force reference_bytes in
               let (_ : Propane.Results.t) =
                 runner ~seed:7L ~journal:path ~journal_batch:batch ~jobs
                   (scaler_sut ()) scaler_campaign
               in
               let first_pass = String.equal (read_file path) reference in
               (* Simulate a kill mid-batch: the on-disk journal is a
                  committed prefix of whole records, possibly followed
                  by a torn partial line from the batch in flight. *)
               (* The five header lines (magic, sut, campaign, seed,
                  total) are committed atomically by [Journal.create],
                  so a kill can only tear run records, never the
                  header. *)
               (match String.split_on_char '\n' reference with
               | magic :: s :: c :: sd :: tot :: rest ->
                   let header =
                     String.concat "\n" [ magic; s; c; sd; tot ]
                   in
                   let records =
                     List.filter (fun l -> not (String.equal l "")) rest
                   in
                   let n = List.length records in
                   let keep =
                     min n (int_of_float (cut_frac *. float_of_int n))
                   in
                   let kept = List.filteri (fun i _ -> i < keep) records in
                   let torn =
                     if keep < n then
                       let next = List.nth records keep in
                       String.sub next 0 (String.length next / 2)
                     else ""
                   in
                   let oc = open_out_bin path in
                   output_string oc
                     (String.concat "\n" (header :: kept) ^ "\n" ^ torn);
                   close_out oc
               | _ -> Alcotest.fail "short reference journal");
               let (_ : Propane.Results.t) =
                 runner ~seed:7L ~journal:path ~resume:true
                   ~journal_batch:batch' ~jobs:jobs' (scaler_sut ())
                   scaler_campaign
               in
               first_pass && String.equal (read_file path) reference)));
  ]

(* ------------------------------------------------------------------ *)
(* Replay determinism: any journalled run, re-executed alone via
   [select] under the same config and seed, must reproduce its journal
   record byte for byte — the library-level contract behind the
   [propane replay] command.  The campaign mixes every model class,
   including the RNG-consuming and temporal ones. *)

let replay_tests =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mixed_campaign =
    Propane.Campaign.make ~name:"mixed" ~targets:[ "x" ]
      ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
      ~times:[ Sim.Sim_time.of_ms 10; Sim.Sim_time.of_ms 30 ]
      ~errors:
        [
          Propane.Error_model.Bit_flip 15;
          Propane.Error_model.Multi_bit [ 0; 7; 15 ];
          Propane.Error_model.Burst { first = 4; len = 4 };
          Propane.Error_model.Noise 16;
          Propane.Error_model.Replace_uniform;
          Propane.Error_model.Delayed
            { model = Propane.Error_model.Bit_flip 15; delay_ms = 12 };
          Propane.Error_model.Intermittent
            {
              model = Propane.Error_model.Replace_uniform;
              period_ms = 8;
              window_ms = 24;
            };
        ]
  in
  [
    Alcotest.test_case "mixed-model journals are byte-identical across jobs"
      `Quick (fun () ->
        let write jobs =
          let path = Filename.temp_file "propane_mixed" ".journal" in
          let (_ : Propane.Results.t) =
            runner ~seed:11L ~journal:path ~jobs (scaler_sut ())
              mixed_campaign
          in
          let bytes = read_file path in
          Sys.remove path;
          bytes
        in
        Alcotest.(check string) "bytes" (write 1) (write 3));
    Alcotest.test_case
      "single-index re-execution reproduces every journal record" `Quick
      (fun () ->
        let path = Filename.temp_file "propane_replay" ".journal" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let (_ : Propane.Results.t) =
              runner ~seed:11L ~journal:path ~jobs:2 (scaler_sut ())
                mixed_campaign
            in
            let j =
              match Propane.Journal.load path with
              | Ok j -> j
              | Error m -> Alcotest.fail m
            in
            let completed = Propane.Journal.completed j in
            Alcotest.(check int)
              "all recorded"
              (Propane.Campaign.size mixed_campaign)
              (Hashtbl.length completed);
            Hashtbl.iter
              (fun index recorded ->
                let results =
                  Propane.Runner.run
                    ~config:(Propane.Runner.Config.make ~seed:11L ())
                    ~select:(fun i -> i = index)
                    (scaler_sut ()) mixed_campaign
                in
                match Propane.Results.outcomes results with
                | [ replayed ] ->
                    let s o =
                      match Propane.Journal.record_string ~index o with
                      | Ok s -> s
                      | Error m -> Alcotest.fail m
                    in
                    Alcotest.(check string)
                      (Printf.sprintf "record %d" index)
                      (s recorded) (s replayed)
                | os -> Alcotest.failf "selected %d runs" (List.length os))
              completed));
  ]

let () =
  Alcotest.run "propane"
    [
      ("error_model", error_model_tests);
      ("error_model_props", error_model_property_tests);
      ("trace", trace_tests);
      ("trace_set", trace_set_tests);
      ("golden", golden_tests);
      ("observer", observer_tests);
      ("testcase", testcase_tests);
      ("campaign", campaign_tests);
      ("signal_store", signal_store_tests);
      ("runner", runner_tests);
      ("estimator", estimator_tests);
      ("results", results_tests);
      ("latency", latency_tests);
      ("uniformity", uniformity_tests);
      ("storage", storage_tests);
      ("journal", journal_tests);
      ("journal_identity", journal_identity_tests);
      ("replay", replay_tests);
      ("config", config_tests);
      ("telemetry", telemetry_tests);
      ("live", live_tests);
      ("golden_tolerant", tolerant_tests);
      ("severity", severity_tests);
      ("fault", fault_tests);
    ]
