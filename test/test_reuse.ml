(* Cell-level campaign reuse: identity, persistence, composition.

   The contract under test is the one {!Propane.Reuse} documents: a
   campaign composed from cached cells plus freshly injected dirty
   targets must be indistinguishable — counts, point estimates and
   Wilson intervals — from the same campaign run from scratch. *)

module B = Dataflow.Builder

let s = Propagation.Signal.make

(* A three-block feed-forward pipeline.  F1 and F2 chain a -> b -> c and
   F3 consumes both b and c, so target [b] feeds two modules — the case
   where one dirty cell must re-run a target that also feeds clean
   cells.  The [tag] arguments only perturb the content digests
   ({!Dataflow.Builder.block}); every variant computes identically,
   which is exactly what lets the tests compare a warm composition
   against a from-scratch reference. *)
let make_system ?(t1 = "f1-v1") ?(t2 = "f2-v1") ?(t3 = "f3-v1") () =
  B.create_exn ~name:"pipeline" ~duration_ms:40
    ~blocks:
      [
        B.block ~name:"F1" ~tag:t1 ~inputs:[ s "a" ] ~outputs:[ s "b" ]
          (fun () inputs -> [| (inputs.(0) + 3) land 0xffff |]);
        B.block ~name:"F2" ~tag:t2 ~inputs:[ s "b" ] ~outputs:[ s "c" ]
          (fun () inputs -> [| (inputs.(0) lsl 1) land 0xffff |]);
        B.block ~name:"F3" ~tag:t3 ~inputs:[ s "b"; s "c" ]
          ~outputs:[ s "d" ]
          (fun () inputs -> [| inputs.(0) lxor inputs.(1) |]);
      ]
    ~stimuli:[ B.ramp (s "a") ] ()

let campaign_of sys =
  Propane.Campaign.make ~name:"pipeline" ~targets:(B.injection_targets sys)
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Simkernel.Sim_time.of_ms [ 5; 17 ])
    ~errors:
      [
        Propane.Error_model.Bit_flip 0;
        Propane.Error_model.Bit_flip 7;
        Propane.Error_model.Bit_flip 15;
      ]

let run ?journal ?(jobs = 1) ?(resume = false) ?select ?cells ?budget ?plan sys
    campaign =
  let config =
    Propane.Runner.Config.make ~seed:11L ~jobs ?journal ~resume
      ~journal_batch:1 ?budget ()
  in
  Propane.Runner.run ~config ?select ?cells ?plan (B.sut sys) campaign

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "propane_reuse_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else ();
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Exact structural equality over whole matrix maps: values, counts and
   interval bounds.  [Estimate.t] is a flat record, so [=] compares all
   five fields. *)
let same_matrices m1 m2 =
  Propagation.String_map.equal
    (fun a b ->
      let open Propagation.Perm_matrix in
      input_count a = input_count b
      && output_count a = output_count b
      && List.for_all
           (fun input ->
             List.for_all
               (fun output ->
                 estimate a ~input ~output = estimate b ~input ~output)
               (List.init (output_count a) (fun k -> k + 1)))
           (List.init (input_count a) (fun i -> i + 1)))
    m1 m2

let matrices_of_results model results =
  let stream = Propane.Estimator.Stream.create ~model () in
  List.iter (Propane.Estimator.Stream.observe stream)
    (Propane.Results.outcomes results);
  Propane.Estimator.Stream.matrices stream

let tests =
  [
    Alcotest.test_case "cell keys separate every component" `Quick (fun () ->
        let base ?(sut_name = "S") ?(module_name = "M") ?(digest = "d1")
            ?(target = "x") ?(outputs = [ "y" ]) ?(shape = "shape")
            ?(errors = [ "bit-flip@0" ]) ?(recipe = "recipe") () =
          Propane.Cell.key_of ~sut_name ~module_name ~module_digest:digest
            ~target ~outputs ~shape ~errors ~recipe
        in
        let reference = base () in
        Alcotest.(check string) "deterministic" reference (base ());
        List.iteri
          (fun i variant ->
            Alcotest.(check bool)
              (Printf.sprintf "component %d changes the key" i)
              false
              (String.equal reference variant))
          [
            base ~sut_name:"T" ();
            base ~module_name:"N" ();
            base ~digest:"d2" ();
            base ~target:"z" ();
            base ~outputs:[ "y"; "z" ] ();
            base ~shape:"other" ();
            base ~errors:[ "bit-flip@1" ] ();
            base ~recipe:"other" ();
          ];
        (* Concatenation attacks must not collide: the components are
           joined with a separator, not pasted together. *)
        Alcotest.(check bool)
          "boundaries kept" false
          (String.equal
             (base ~target:"xy" ~outputs:[ "z" ] ())
             (base ~target:"x" ~outputs:[ "yz" ] ())));
    Alcotest.test_case "congruent error spellings share one key component"
      `Quick (fun () ->
        (* The key's error component is built from width-canonical
           descriptions, so a roster respelt modulo 2^width (or with
           multi-bit positions permuted) must not invalidate a cache. *)
        let errs errors =
          Propane.Cell.errors_of ~width:16
            (Propane.Campaign.make ~name:"c" ~targets:[ "x" ]
               ~testcases:[ Propane.Testcase.make ~id:"t" ~params:[] ]
               ~times:[ Simkernel.Sim_time.of_ms 1 ]
               ~errors)
        in
        Alcotest.(check (list string))
          "stuck-at mod 2^w"
          (errs [ Propane.Error_model.Stuck_at 5 ])
          (errs [ Propane.Error_model.Stuck_at (5 + 65536) ]);
        Alcotest.(check (list string))
          "negative offset wraps"
          (errs [ Propane.Error_model.Offset (-1) ])
          (errs [ Propane.Error_model.Offset 65535 ]);
        Alcotest.(check (list string))
          "multi-bit order is irrelevant"
          (errs [ Propane.Error_model.Multi_bit [ 1; 3 ] ])
          (errs [ Propane.Error_model.Multi_bit [ 3; 1 ] ]);
        Alcotest.(check bool)
          "different constants still separate" false
          (errs [ Propane.Error_model.Stuck_at 5 ]
          = errs [ Propane.Error_model.Stuck_at 6 ]));
    Alcotest.test_case "plan enumerates one cell per consuming module"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let plan =
          Propane.Cell.plan ~sut:(B.sut sys) ~model:(B.model sys) ~recipe:"r"
            campaign
        in
        let pairs =
          List.map
            (fun (c : Propane.Cell.t) -> (c.module_name, c.target))
            plan.cells
        in
        Alcotest.(check (list (pair string string)))
          "cells"
          [ ("F1", "a"); ("F2", "b"); ("F3", "b"); ("F3", "c") ]
          (List.sort compare pairs);
        List.iter
          (fun (c : Propane.Cell.t) ->
            Alcotest.(check bool)
              "digest present" true (c.digest <> None))
          plan.cells;
        let by_target = List.map fst plan.by_target in
        Alcotest.(check (list string))
          "by_target follows campaign order" campaign.Propane.Campaign.targets
          by_target);
    Alcotest.test_case "an undigested module is never cacheable" `Quick
      (fun () ->
        let sys = make_system () in
        let sut = { (B.sut sys) with Propane.Sut.digests = [] } in
        let plan =
          Propane.Cell.plan ~sut ~model:(B.model sys) ~recipe:"r"
            (campaign_of sys)
        in
        List.iter
          (fun (c : Propane.Cell.t) ->
            Alcotest.(check bool) "no digest" true (c.digest = None))
          plan.cells;
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let reuse =
              Propane.Reuse.plan ~recipe:"r" ~sut ~model:(B.model sys)
                ~dir (campaign_of sys)
            in
            Alcotest.(check int)
              "nothing reused" 0
              (Propane.Reuse.reused_cells reuse);
            Alcotest.(check (list string))
              "everything dirty"
              (campaign_of sys).Propane.Campaign.targets
              (Propane.Reuse.dirty_targets reuse)));
    Alcotest.test_case "cache entries round-trip and heal" `Quick (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let key = String.make 32 'a' in
            let entry =
              {
                Propane.Cache.module_name = "F1";
                target = "a";
                outputs = [| "b" |];
                counts = [| (3, 6) |];
              }
            in
            (match Propane.Cache.store ~dir ~key entry with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "store failed: %s" msg);
            Alcotest.(check bool) "mem" true (Propane.Cache.mem ~dir ~key);
            (match Propane.Cache.load ~dir ~key with
            | Some e -> Alcotest.(check bool) "round-trips" true (e = entry)
            | None -> Alcotest.fail "load missed a stored entry");
            Alcotest.(check bool)
              "missing key is a miss" true
              (Propane.Cache.load ~dir ~key:(String.make 32 'b') = None);
            (* Torn or garbage entries are misses, not errors. *)
            let oc = open_out (Filename.concat dir key) in
            output_string oc "propane-cache 1\nmodule\tF1\ncell\tb\t9";
            close_out oc;
            Alcotest.(check bool)
              "corrupt entry is a miss" true
              (Propane.Cache.load ~dir ~key = None);
            (* Keys are file names: anything but hex must be refused
               before it can escape the directory. *)
            List.iter
              (fun key ->
                match
                  Propane.Cache.store ~dir ~key
                    {
                      Propane.Cache.module_name = "m";
                      target = "t";
                      outputs = [| "o" |];
                      counts = [| (0, 1) |];
                    }
                with
                | Error _ -> ()
                | Ok () -> Alcotest.failf "store accepted key %S" key)
              [ ""; ".."; "../evil"; "a/b"; "stats.json" ]));
    Alcotest.test_case "cold plan measures, warm plan reuses everything"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            Alcotest.(check int)
              "cold reuses nothing" 0
              (Propane.Reuse.reused_cells cold);
            Alcotest.(check int)
              "cold selects the full campaign"
              (Propane.Campaign.size campaign)
              (Propane.Reuse.selected_runs cold);
            let results =
              run ~select:(Propane.Reuse.select cold) sys campaign
            in
            let stream = Propane.Reuse.compose cold results in
            (match Propane.Reuse.persist cold stream results with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "persist failed: %s" msg);
            let warm =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            Alcotest.(check int)
              "warm reuses every cell"
              (Propane.Reuse.total_cells warm)
              (Propane.Reuse.reused_cells warm);
            Alcotest.(check int)
              "warm selects nothing" 0
              (Propane.Reuse.selected_runs warm);
            let nothing =
              run ~select:(Propane.Reuse.select warm) sys campaign
            in
            Alcotest.(check (list string))
              "no fresh outcomes" []
              (List.map
                 (fun (o : Propane.Results.outcome) -> o.testcase)
                 (Propane.Results.outcomes nothing));
            let composed = Propane.Reuse.compose warm nothing in
            Alcotest.(check bool)
              "cache-only estimates equal the measured ones" true
              (same_matrices
                 (Propane.Estimator.Stream.matrices composed)
                 (matrices_of_results (B.model sys) results))));
    Alcotest.test_case "a stale module digest forces re-injection" `Quick
      (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            let results =
              run ~select:(Propane.Reuse.select cold) sys campaign
            in
            let stream = Propane.Reuse.compose cold results in
            (match Propane.Reuse.persist cold stream results with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "persist failed: %s" msg);
            (* Edit F2 (consumer of b): exactly b goes dirty — the
               poisoned key misses while a and c still hit. *)
            let edited = make_system ~t2:"f2-v2" () in
            let warm =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut edited)
                ~model:(B.model edited) ~dir campaign
            in
            Alcotest.(check (list string))
              "only the edited module's input re-runs" [ "b" ]
              (Propane.Reuse.dirty_targets warm);
            Alcotest.(check (list string))
              "unaffected targets stay clean" [ "a"; "c" ]
              (List.sort compare (Propane.Reuse.clean_targets warm));
            Alcotest.(check int)
              "one target block selected"
              (Propane.Campaign.runs_per_target campaign)
              (Propane.Reuse.selected_runs warm);
            (* A corrupted entry behind a clean target dirties it on the
               next plan: self-healing instead of trusting the file. *)
            let cell_of_f1 =
              List.find
                (fun (c : Propane.Cell.t) ->
                  String.equal c.module_name "F1")
                (Propane.Cell.plan ~sut:(B.sut edited)
                   ~model:(B.model edited) ~recipe:"r" campaign)
                  .cells
            in
            let oc = open_out (Filename.concat dir cell_of_f1.key) in
            output_string oc "garbage";
            close_out oc;
            let healed =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut edited)
                ~model:(B.model edited) ~dir campaign
            in
            Alcotest.(check (list string))
              "poisoned entry re-measured" [ "a"; "b" ]
              (List.sort compare (Propane.Reuse.dirty_targets healed))));
    Alcotest.test_case "persist skips a partially measured target" `Quick
      (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            (* Run only target [a]'s block: targets b and c stay
               unmeasured, as after an adaptive early stop. *)
            let rpt = Propane.Campaign.runs_per_target campaign in
            let results = run ~select:(fun idx -> idx < rpt) sys campaign in
            let stream = Propane.Reuse.compose cold results in
            (match Propane.Reuse.persist cold stream results with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "persist failed: %s" msg);
            let warm =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            Alcotest.(check (list string))
              "only the fully measured target is reusable" [ "a" ]
              (Propane.Reuse.clean_targets warm);
            Alcotest.(check (list string))
              "unfinished targets stay dirty" [ "b"; "c" ]
              (List.sort compare (Propane.Reuse.dirty_targets warm))));
    Alcotest.test_case "journal carries the cell provenance" `Quick
      (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        let path = Filename.temp_file "propane_reuse" ".journal" in
        Fun.protect
          ~finally:(fun () ->
            rm_rf dir;
            Sys.remove path)
          (fun () ->
            let plan =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            let expected = Propane.Reuse.journal_cells plan in
            let (_ : Propane.Results.t) =
              run ~journal:path ~select:(Propane.Reuse.select plan)
                ~cells:expected sys campaign
            in
            match Propane.Journal.load path with
            | Error msg -> Alcotest.failf "journal load failed: %s" msg
            | Ok journal ->
                Alcotest.(check int)
                  "one record per cell" (List.length expected)
                  (List.length journal.Propane.Journal.cells);
                List.iter2
                  (fun (a : Propane.Journal.cell)
                       (b : Propane.Journal.cell) ->
                    Alcotest.(check bool)
                      "cell record round-trips" true (a = b))
                  expected journal.Propane.Journal.cells));
    Alcotest.test_case "select journals are byte-identical across jobs"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let read_file path =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let rpt = Propane.Campaign.runs_per_target campaign in
        (* Select the middle target block only: the reorder buffer must
           stream records in index order across the deselected gaps. *)
        let select idx = idx >= rpt && idx < 2 * rpt in
        let journal_bytes jobs =
          let path = Filename.temp_file "propane_reuse_sel" ".journal" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let (_ : Propane.Results.t) =
                run ~journal:path ~jobs ~select sys campaign
              in
              read_file path)
        in
        let serial = journal_bytes 1 in
        Alcotest.(check bool)
          "jobs=3 journal equals serial" true
          (String.equal serial (journal_bytes 3)));
  ]

(* The tentpole property: composing cached clean cells with freshly
   injected dirty targets is {e exactly} a from-scratch campaign —
   same counts, same point values, same interval bounds — whichever
   subset of modules was edited. *)
let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:12
         ~name:"composed cached+fresh estimates equal a from-scratch run"
         QCheck2.Gen.(tup3 bool bool bool)
         (fun (e1, e2, e3) ->
           let dir = fresh_dir () in
           Fun.protect
             ~finally:(fun () -> rm_rf dir)
             (fun () ->
               let base = make_system () in
               let campaign = campaign_of base in
               let cold =
                 Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut base)
                   ~model:(B.model base) ~dir campaign
               in
               let cold_results =
                 run ~select:(Propane.Reuse.select cold) base campaign
               in
               let cold_stream = Propane.Reuse.compose cold cold_results in
               (match Propane.Reuse.persist cold cold_stream cold_results with
               | Ok () -> ()
               | Error msg -> Alcotest.failf "persist failed: %s" msg);
               (* "Edit" a random subset of modules: digests move, the
                  transfers do not, so the from-scratch reference of the
                  edited system is the cold stream itself. *)
               let edited =
                 make_system
                   ~t1:(if e1 then "f1-v2" else "f1-v1")
                   ~t2:(if e2 then "f2-v2" else "f2-v1")
                   ~t3:(if e3 then "f3-v2" else "f3-v1")
                   ()
               in
               let warm =
                 Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut edited)
                   ~model:(B.model edited) ~dir campaign
               in
               let expect_dirty =
                 List.filter
                   (fun t ->
                     match t with
                     | "a" -> e1
                     | "b" -> e2 || e3
                     | "c" -> e3
                     | _ -> false)
                   campaign.Propane.Campaign.targets
               in
               if Propane.Reuse.dirty_targets warm <> expect_dirty then
                 QCheck2.Test.fail_reportf "dirty targets: got %s, want %s"
                   (String.concat "," (Propane.Reuse.dirty_targets warm))
                   (String.concat "," expect_dirty);
               let fresh_results =
                 run ~select:(Propane.Reuse.select warm) edited campaign
               in
               let composed = Propane.Reuse.compose warm fresh_results in
               same_matrices
                 (Propane.Estimator.Stream.matrices composed)
                 (Propane.Estimator.Stream.matrices cold_stream))));
  ]

(* ------------------------------------------------------------------ *)
(* The plan layer over the same pipeline system: budgeted journals are
   byte-identical across domain counts and kill-and-resume, and a
   budget composes with cell reuse — cached cells get zero fresh
   allocation. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let plan_budget = 12

let fresh_plan ?select sys campaign =
  Propane.Plan.create ~mode:Propane.Plan.Adaptive ?select ~budget:plan_budget
    ~model:(B.model sys) ~campaign ()

let planned_journal_bytes ?(jobs = 1) sys campaign =
  let path = Filename.temp_file "propane_planj" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let (_ : Propane.Results.t) =
        run ~journal:path ~jobs ~budget:plan_budget
          ~plan:(fresh_plan sys campaign) sys campaign
      in
      read_file path)

let plan_tests =
  [
    Alcotest.test_case "a budgeted run executes the plan, not the campaign"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let plan = fresh_plan sys campaign in
        let results =
          run ~budget:plan_budget ~plan sys campaign
        in
        Alcotest.(check int)
          "exactly the budget executes" plan_budget
          (Propane.Results.count results);
        Alcotest.(check bool)
          "plan exhausted" true
          (Propane.Plan.exhausted plan);
        let granted =
          List.fold_left
            (fun acc (r : Propane.Journal.round) -> acc + r.runs)
            0 (Propane.Plan.rounds plan)
        in
        Alcotest.(check int) "rounds account for every run" plan_budget granted;
        (* Round 0 is the pilot: every target injected at least once. *)
        let pilot_targets =
          List.filter_map
            (fun (r : Propane.Journal.round) ->
              if r.round = 0 && r.runs > 0 then Some r.target else None)
            (Propane.Plan.rounds plan)
        in
        Alcotest.(check (list string))
          "pilot covers every target" campaign.Propane.Campaign.targets
          (List.sort compare pilot_targets));
    Alcotest.test_case "planned journal carries the allocation history"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let path = Filename.temp_file "propane_planj" ".journal" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let plan = fresh_plan sys campaign in
            let (_ : Propane.Results.t) =
              run ~journal:path ~budget:plan_budget ~plan sys campaign
            in
            match Propane.Journal.load path with
            | Error msg -> Alcotest.failf "journal load failed: %s" msg
            | Ok journal ->
                Alcotest.(check bool)
                  "journalled rounds equal the plan's" true
                  (journal.Propane.Journal.rounds = Propane.Plan.rounds plan)));
    Alcotest.test_case "a fully warm cache starves a budgeted campaign"
      `Quick (fun () ->
        (* Every cell cached: the reuse filter deselects everything, the
           pilot finds no allocatable block, and the plan finishes
           without granting a single run. *)
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            let results =
              run ~select:(Propane.Reuse.select cold) sys campaign
            in
            (match
               Propane.Reuse.persist cold
                 (Propane.Reuse.compose cold results)
                 results
             with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "persist failed: %s" msg);
            let warm =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            let plan =
              fresh_plan ~select:(Propane.Reuse.select warm) sys campaign
            in
            let nothing =
              run ~select:(Propane.Reuse.select warm) ~budget:plan_budget
                ~plan sys campaign
            in
            Alcotest.(check int)
              "zero fresh runs" 0
              (Propane.Results.count nothing);
            Alcotest.(check int)
              "zero allocation" 0
              (Propane.Plan.allocated plan);
            Alcotest.(check bool)
              "plan exhausted" true
              (Propane.Plan.exhausted plan)));
    Alcotest.test_case "budget composes with reuse: only dirty targets draw"
      `Quick (fun () ->
        let sys = make_system () in
        let campaign = campaign_of sys in
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut sys)
                ~model:(B.model sys) ~dir campaign
            in
            let results =
              run ~select:(Propane.Reuse.select cold) sys campaign
            in
            (match
               Propane.Reuse.persist cold
                 (Propane.Reuse.compose cold results)
                 results
             with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "persist failed: %s" msg);
            (* Edit F2: exactly [b] goes dirty; a budgeted re-measure
               must spend the whole budget there and never touch the
               cached targets. *)
            let edited = make_system ~t2:"f2-v2" () in
            let warm =
              Propane.Reuse.plan ~recipe:"r" ~sut:(B.sut edited)
                ~model:(B.model edited) ~dir campaign
            in
            Alcotest.(check (list string))
              "only b is dirty" [ "b" ]
              (Propane.Reuse.dirty_targets warm);
            let budget = Propane.Campaign.runs_per_target campaign in
            let plan =
              Propane.Plan.create ~mode:Propane.Plan.Adaptive
                ~select:(Propane.Reuse.select warm) ~budget
                ~model:(B.model edited) ~campaign ()
            in
            let fresh =
              run ~select:(Propane.Reuse.select warm) ~budget ~plan edited
                campaign
            in
            Alcotest.(check bool)
              "every allocation goes to a dirty target" true
              (List.for_all
                 (fun (r : Propane.Journal.round) ->
                   List.mem r.target (Propane.Reuse.dirty_targets warm))
                 (Propane.Plan.rounds plan));
            Alcotest.(check bool)
              "cached targets get zero fresh runs" true
              (List.for_all
                 (fun (o : Propane.Results.outcome) ->
                   String.equal o.injection.Propane.Injection.target "b")
                 (Propane.Results.outcomes fresh))));
  ]

(* The satellite property: whatever the domain count — and across a
   kill mid-campaign followed by a resume under a different domain
   count — an adaptive budgeted journal ends up byte-identical to the
   serial, uninterrupted one.  The resumed run re-derives the round
   sequence from the journal's replayed outcomes instead of
   re-executing them. *)
let plan_property_tests =
  let base = make_system () in
  let base_campaign = campaign_of base in
  let reference_bytes =
    lazy (planned_journal_bytes ~jobs:1 base base_campaign)
  in
  let is_round_record line =
    String.length line >= 5 && String.equal (String.sub line 0 5) "plan\t"
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:10
         ~name:"planned journal bytes invariant under jobs, kill + resume"
         QCheck2.Gen.(tup3 (int_range 1 3) (float_bound_inclusive 1.0)
                        (int_range 1 3))
         (fun (jobs, cut_frac, jobs') ->
           let reference = Lazy.force reference_bytes in
           let first_pass =
             String.equal reference (planned_journal_bytes ~jobs base
                                       base_campaign)
           in
           (* Simulate a kill mid-campaign: keep the five-line header
              plus a committed prefix of run records, append a torn
              half-record, and drop the round trailer (a killed
              campaign never reached {!Journal.append_rounds}). *)
           let path = Filename.temp_file "propane_planq" ".journal" in
           Fun.protect
             ~finally:(fun () -> Sys.remove path)
             (fun () ->
               (match String.split_on_char '\n' reference with
               | magic :: s :: c :: sd :: tot :: rest ->
                   let header = String.concat "\n" [ magic; s; c; sd; tot ] in
                   let records =
                     List.filter
                       (fun l ->
                         (not (String.equal l "")) && not (is_round_record l))
                       rest
                   in
                   let n = List.length records in
                   let keep =
                     min n (int_of_float (cut_frac *. float_of_int n))
                   in
                   let kept = List.filteri (fun i _ -> i < keep) records in
                   let torn =
                     if keep < n then
                       let next = List.nth records keep in
                       String.sub next 0 (String.length next / 2)
                     else ""
                   in
                   let oc = open_out_bin path in
                   output_string oc
                     (String.concat "\n" (header :: kept) ^ "\n" ^ torn);
                   close_out oc
               | _ -> Alcotest.fail "short reference journal");
               let (_ : Propane.Results.t) =
                 run ~journal:path ~resume:true ~jobs:jobs'
                   ~budget:plan_budget
                   ~plan:(fresh_plan base base_campaign)
                   base base_campaign
               in
               first_pass && String.equal reference (read_file path))));
  ]

let () =
  Alcotest.run "reuse"
    [
      ("reuse", tests);
      ("reuse_property", property_tests);
      ("plan", plan_tests);
      ("plan_property", plan_property_tests);
    ]
