(* Tests for the distributed campaign subsystem (lib/cluster): framing,
   protocol codec round-trips, addresses, and in-process integration of
   coordinator + workers over a Unix socket — including the guarantees
   the docs promise: journals byte-identical to serial runs, dead-worker
   reassignment, and heartbeat expiry. *)

module Sim = Simkernel

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* Any byte can appear in a reason or a signal name on the wire — the
   binary protocol must not care about newlines, tabs or colons that
   the line-based journal format forbids. *)
let gen_nasty_string =
  QCheck2.Gen.(
    oneof
      [
        pure "a:b\nc\td\r\x00e";
        string_size ~gen:char (int_range 0 20);
      ])

let gen_small_nat = QCheck2.Gen.int_range 0 100_000

(* Every model class crosses the wire inside a Result message, temporal
   wrappers included — the protocol delegates to Storage's codec, so
   this doubles as the cluster-transport round-trip for new models. *)
let gen_error =
  QCheck2.Gen.(
    let spatial =
      oneof
        [
          map (fun b -> Propane.Error_model.Bit_flip b) (int_range 0 31);
          map
            (fun bits ->
              Propane.Error_model.Multi_bit (List.sort_uniq Int.compare bits))
            (list_size (int_range 1 5) (int_range 0 31));
          map2
            (fun first len -> Propane.Error_model.Burst { first; len })
            (int_range 0 15) (int_range 1 8);
          map (fun v -> Propane.Error_model.Stuck_at v) (int_range 0 65535);
          map (fun d -> Propane.Error_model.Offset d) (int_range (-1000) 1000);
          map (fun a -> Propane.Error_model.Noise a) (int_range 1 65535);
          pure Propane.Error_model.Replace_uniform;
        ]
    in
    oneof
      [
        spatial;
        map2
          (fun model delay_ms ->
            Propane.Error_model.Delayed { model; delay_ms })
          spatial (int_range 0 1000);
        map3
          (fun model period_ms window_ms ->
            Propane.Error_model.Intermittent { model; period_ms; window_ms })
          spatial (int_range 1 100) (int_range 1 1000);
      ])

let gen_status =
  QCheck2.Gen.(
    oneof
      [
        pure Propane.Results.Completed;
        map2
          (fun at_ms reason -> Propane.Results.Crashed { at_ms; reason })
          gen_small_nat gen_nasty_string;
        map
          (fun budget_ms -> Propane.Results.Hung { budget_ms })
          gen_small_nat;
      ])

let gen_outcome =
  QCheck2.Gen.(
    let* testcase = gen_nasty_string in
    let* target =
      map2 (fun c s -> String.make 1 c ^ s) char gen_nasty_string
    in
    let* at_ms = gen_small_nat in
    let* error = gen_error in
    let* status = gen_status in
    let* divergences =
      small_list
        (map2
           (fun signal first_ms -> { Propane.Golden.signal; first_ms })
           gen_nasty_string gen_small_nat)
    in
    pure
      {
        Propane.Results.testcase;
        injection =
          Propane.Injection.make ~target ~at:(Sim.Sim_time.of_ms at_ms)
            ~error;
        divergences;
        status;
      })

let gen_to_coordinator =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun host pid config_digest ->
            Cluster.Protocol.Hello
              { version = Cluster.Protocol.version; host; pid; config_digest })
          gen_nasty_string gen_small_nat gen_nasty_string;
        map2
          (fun host pid ->
            Cluster.Protocol.Join
              { version = Cluster.Protocol.version; host; pid })
          gen_nasty_string gen_small_nat;
        pure Cluster.Protocol.Request_batch;
        pure Cluster.Protocol.Heartbeat;
        map3
          (fun index retries outcome ->
            Cluster.Protocol.Result { index; retries; outcome })
          gen_small_nat (int_range 0 10) gen_outcome;
      ])

let gen_to_worker =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun sut campaign (seed, total, config) ->
            Cluster.Protocol.Welcome { sut; campaign; seed; total; config })
          gen_nasty_string gen_nasty_string
          (triple
             (map Int64.of_int int)
             gen_small_nat gen_nasty_string);
        map3
          (fun sut campaign (seed, total, config) ->
            Cluster.Protocol.Assign { sut; campaign; seed; total; config })
          gen_nasty_string gen_nasty_string
          (triple
             (map Int64.of_int int)
             gen_small_nat gen_nasty_string);
        map
          (fun l -> Cluster.Protocol.Batch l)
          (small_list gen_small_nat);
        pure Cluster.Protocol.Ping;
        pure Cluster.Protocol.Done;
        map (fun r -> Cluster.Protocol.Reject r) gen_nasty_string;
      ])

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)

let drain_frames dec =
  let rec go acc =
    match Cluster.Frame.next dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> List.rev acc
    | Error msg -> Alcotest.failf "decoder error: %s" msg
  in
  go []

let frame_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"frames survive arbitrary chunking"
         QCheck2.Gen.(
           pair
             (small_list (string_size ~gen:char (int_range 0 64)))
             (small_list (int_range 1 7)))
         (fun (payloads, chunks) ->
           let stream =
             String.concat "" (List.map Cluster.Frame.encode payloads)
           in
           let dec = Cluster.Frame.decoder () in
           let out = ref [] in
           let pos = ref 0 in
           let sizes = if chunks = [] then [ 1 ] else chunks in
           let i = ref 0 in
           while !pos < String.length stream do
             let n =
               min
                 (List.nth sizes (!i mod List.length sizes))
                 (String.length stream - !pos)
             in
             i := !i + 1;
             Cluster.Frame.feed dec (String.sub stream !pos n);
             pos := !pos + n;
             out := !out @ drain_frames dec
           done;
           !out = payloads && Cluster.Frame.buffered dec = 0));
    Alcotest.test_case "oversized length prefix poisons the decoder"
      `Quick (fun () ->
        let b = Bytes.create 4 in
        Bytes.set_int32_be b 0 0x7FFFFFFFl;
        let dec = Cluster.Frame.decoder () in
        Cluster.Frame.feed dec (Bytes.to_string b);
        (match Cluster.Frame.next dec with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "absurd frame length accepted");
        Cluster.Frame.feed dec (Cluster.Frame.encode "x");
        match Cluster.Frame.next dec with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "poisoned decoder recovered");
    Alcotest.test_case "empty payload round-trips" `Quick (fun () ->
        let dec = Cluster.Frame.decoder () in
        Cluster.Frame.feed dec (Cluster.Frame.encode "");
        Alcotest.(check (list string)) "one empty frame" [ "" ]
          (drain_frames dec));
    Alcotest.test_case "mid-frame silence is not an error" `Quick (fun () ->
        let dec = Cluster.Frame.decoder () in
        let frame = Cluster.Frame.encode "hello" in
        Cluster.Frame.feed dec (String.sub frame 0 6);
        (match Cluster.Frame.next dec with
        | Ok None -> ()
        | Ok (Some _) -> Alcotest.fail "incomplete frame returned"
        | Error msg -> Alcotest.failf "decoder error: %s" msg);
        Alcotest.(check int) "buffered" 6 (Cluster.Frame.buffered dec));
    Alcotest.test_case "write_many is one valid frame stream" `Quick
      (fun () ->
        (* The worker's batched result flush: several frames in a
           single write must read back unchanged frame by frame. *)
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close a with Unix.Unix_error _ -> ());
            try Unix.close b with Unix.Unix_error _ -> ())
          (fun () ->
            let payloads = [ "first"; ""; "tab\tand\nnewline"; "last" ] in
            Cluster.Frame.write_many a [];
            Cluster.Frame.write_many a payloads;
            Unix.close a;
            let r = Cluster.Frame.reader b in
            let rec drain acc =
              match Cluster.Frame.read r with
              | Ok (Some p) -> drain (p :: acc)
              | Ok None -> List.rev acc
              | Error msg -> Alcotest.failf "read failed: %s" msg
            in
            Alcotest.(check (list string)) "payloads" payloads (drain [])));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let protocol_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"to_coordinator messages round-trip" gen_to_coordinator
         (fun msg ->
           Cluster.Protocol.decode_to_coordinator
             (Cluster.Protocol.encode_to_coordinator msg)
           = Ok msg));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"to_worker messages round-trip"
         gen_to_worker (fun msg ->
           Cluster.Protocol.decode_to_worker
             (Cluster.Protocol.encode_to_worker msg)
           = Ok msg));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:1000 ~name:"decoding garbage never raises"
         QCheck2.Gen.(string_size ~gen:char (int_range 0 64))
         (fun s ->
           (match Cluster.Protocol.decode_to_coordinator s with
           | Ok _ | Error _ -> true)
           &&
           match Cluster.Protocol.decode_to_worker s with
           | Ok _ | Error _ -> true));
    Alcotest.test_case "trailing bytes are rejected" `Quick (fun () ->
        let s =
          Cluster.Protocol.encode_to_coordinator Cluster.Protocol.Heartbeat
          ^ "junk"
        in
        match Cluster.Protocol.decode_to_coordinator s with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "trailing bytes accepted");
    Alcotest.test_case "truncated message is an error, not an exception"
      `Quick (fun () ->
        let s =
          Cluster.Protocol.encode_to_worker
            (Cluster.Protocol.Reject "some reason")
        in
        for n = 0 to String.length s - 1 do
          match Cluster.Protocol.decode_to_worker (String.sub s 0 n) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "truncation at %d accepted" n
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Address                                                             *)

let address_tests =
  let roundtrip s =
    match Cluster.Address.of_string s with
    | Ok a -> Cluster.Address.to_string a
    | Error msg -> Alcotest.failf "%s did not parse: %s" s msg
  in
  [
    Alcotest.test_case "unix and tcp addresses parse" `Quick (fun () ->
        Alcotest.(check string)
          "unix" "unix:/tmp/x.sock"
          (roundtrip "unix:/tmp/x.sock");
        Alcotest.(check string)
          "tcp" "tcp:10.0.0.1:9000"
          (roundtrip "tcp:10.0.0.1:9000");
        Alcotest.(check string)
          "tcp default host" "tcp:127.0.0.1:80" (roundtrip "tcp::80"));
    Alcotest.test_case "malformed addresses are rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Cluster.Address.of_string s with
            | Error _ -> ()
            | Ok a ->
                Alcotest.failf "%S parsed as %s" s
                  (Cluster.Address.to_string a))
          [ "bogus"; "unix:"; "tcp:host"; "tcp:host:0"; "tcp:host:notaport";
            "tcp:host:70000"; "" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Integration: coordinator + in-process workers over a Unix socket    *)

(* Same synthetic SUT as the runner tests: y = x >> 4 on a 100 ms ramp,
   80 experiments (1 test case x 5 instants x 16 bit-flips). *)
let scaler_sut () =
  let instantiate _tc =
    let store =
      Propane.Signal_store.create ~signals:[ ("x", 16); ("y", 16) ] ()
    in
    let t = ref 0 in
    {
      Propane.Sut.read = Propane.Signal_store.peek store;
      write = Propane.Signal_store.poke store;
      inject = Propane.Signal_store.inject store;
      step =
        (fun () ->
          incr t;
          Propane.Signal_store.write store "x" (!t * 16);
          Propane.Signal_store.write store "y"
            (Propane.Signal_store.read store "x" lsr 4));
      finished = (fun () -> !t >= 100);
      snapshot = None;
    }
  in
  {
    Propane.Sut.name = "scaler";
    signals = [ ("x", 16); ("y", 16) ];
    digests = [ ("SCALE", "scale-v1") ];
    instantiate;
  }

let scaler_campaign =
  Propane.Campaign.make ~name:"scaler" ~targets:[ "x" ]
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Sim.Sim_time.of_ms [ 10; 20; 30; 40; 50 ])
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let scale_model =
  Propagation.System_model.make_exn
    ~modules:
      [
        Propagation.Sw_module.make ~name:"SCALE"
          ~inputs:[ Propagation.Signal.make "x" ]
          ~outputs:[ Propagation.Signal.make "y" ];
      ]
    ~system_inputs:[ Propagation.Signal.make "x" ]
    ~system_outputs:[ Propagation.Signal.make "y" ]

(* Throttled variant: slow enough that the coordinator observes results
   while workers still hold unexecuted runs, so adaptive stop rules
   have room to act (an unthrottled scaler run lasts microseconds). *)
let slow_scaler_sut () =
  let base = scaler_sut () in
  {
    base with
    Propane.Sut.instantiate =
      (fun tc ->
        let inner = base.Propane.Sut.instantiate tc in
        {
          inner with
          Propane.Sut.step =
            (fun () ->
              Unix.sleepf 5e-5;
              inner.Propane.Sut.step ());
        });
  }

let seed = 20010701L

let tmp_path suffix =
  let path = Filename.temp_file "propane-cluster" suffix in
  Unix.unlink path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let serial_reference ~journal =
  Propane.Runner.run
    ~config:(Propane.Runner.Config.make ~seed ~jobs:1 ~journal ())
    (scaler_sut ()) scaler_campaign

(* Workers run in their own domains; [Coordinator.serve] blocks the
   test's domain.  [worker_hooks] gives each spawned worker its own
   [on_result] so one can be told to die while the others drain the
   campaign. *)
let cluster_run ?(heartbeat_timeout_s = 30.) ?journal ?(resume = false)
    ?(worker_hooks = [ None; None ]) ?(extra_clients = fun _ -> [])
    ?(sut = scaler_sut) ?live ?stop_when ?select ?cells ?budget ?plan () =
  let addr = Cluster.Address.Unix_sock (tmp_path ".sock") in
  let listen = Cluster.Address.listen addr in
  let make (w : Cluster.Protocol.welcome) =
    if Propane.Campaign.size scaler_campaign <> w.total then
      Error "campaign size mismatch"
    else
      Ok
        (Propane.Runner.executor ~seed:w.Cluster.Protocol.seed (sut ())
           scaler_campaign)
  in
  let workers =
    List.map
      (fun on_result ->
        Domain.spawn (fun () ->
            match Cluster.Worker.run ?on_result ~connect:addr ~make () with
            | r -> r
            | exception _ -> Error "worker died"))
      worker_hooks
  in
  let clients = extra_clients addr in
  let results =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close listen with Unix.Unix_error _ -> ());
        Cluster.Address.unlink addr)
      (fun () ->
        let config =
          Propane.Runner.Config.make ~seed ?journal ~resume
            ~jobs:(max 1 (List.length worker_hooks))
            ?stop_when ?budget ()
        in
        Cluster.Coordinator.serve ~heartbeat_timeout_s ?live ?select ?cells
          ?plan ~config ~batch_max:8 ~listen ~sut:"scaler" ~campaign:"scaler"
          ~total:(Propane.Campaign.size scaler_campaign)
          ())
  in
  List.iter (fun d -> ignore (Domain.join d)) workers;
  List.iter (fun d -> ignore (Domain.join d)) clients;
  results

let check_results_match what serial cluster =
  Alcotest.(check int)
    (what ^ ": count")
    (Propane.Results.count serial)
    (Propane.Results.count cluster);
  Alcotest.(check bool)
    (what ^ ": outcomes identical")
    true
    (Propane.Results.outcomes serial = Propane.Results.outcomes cluster)

let integration_tests =
  [
    Alcotest.test_case "2-worker journal is byte-identical to serial"
      `Slow (fun () ->
        let serial_path = tmp_path ".journal" in
        let cluster_path = tmp_path ".journal" in
        let serial = serial_reference ~journal:serial_path in
        let cluster = cluster_run ~journal:cluster_path () in
        check_results_match "results" serial cluster;
        Alcotest.(check string)
          "journal bytes" (read_file serial_path) (read_file cluster_path);
        Sys.remove serial_path;
        Sys.remove cluster_path);
    Alcotest.test_case
      "cell-reuse selection journals identically to restricted serial" `Slow
      (fun () ->
        (* A reuse plan restricting the campaign to a middle slice: the
           cluster must schedule only the selected indices, write the
           same cell provenance records, and stream records across the
           deselected gaps in strict index order — byte-for-byte what
           the serial engine produces under the same plan. *)
        let select idx = idx >= 16 && idx < 48 in
        let cells =
          [
            {
              Propane.Journal.target = "x";
              module_name = "SCALE";
              key = String.make 32 'c';
              reused = false;
            };
          ]
        in
        let serial_path = tmp_path ".journal" in
        let cluster_path = tmp_path ".journal" in
        let serial =
          Propane.Runner.run
            ~config:
              (Propane.Runner.Config.make ~seed ~jobs:1 ~journal:serial_path
                 ())
            ~select ~cells (scaler_sut ()) scaler_campaign
        in
        let cluster =
          cluster_run ~journal:cluster_path ~select ~cells ()
        in
        check_results_match "results" serial cluster;
        Alcotest.(check string)
          "journal bytes" (read_file serial_path) (read_file cluster_path);
        Alcotest.(check int)
          "only the selected slice ran" 32
          (Propane.Results.count cluster);
        Sys.remove serial_path;
        Sys.remove cluster_path);
    Alcotest.test_case
      "adaptive plan journals identically across serial and cluster" `Slow
      (fun () ->
        (* The budget scheduler's rounds are a pure function of the
           completed outcome set, so a 2-worker fleet — with its own
           batching, interleaving and round barriers — must journal
           byte-for-byte what the serial engine does under a fresh plan
           of the same budget, rounds trailer included.  Uniform spends
           the whole budget in one round (several batches per worker);
           adaptive stops after the pilot here — the lone module's
           ranking resolves immediately — which is exactly the
           early-stop path worth pinning down. *)
        let budget = 24 in
        List.iter
          (fun mode ->
            let what = Propane.Plan.mode_to_string mode in
            let fresh_plan () =
              Propane.Plan.create ~mode ~budget ~model:scale_model
                ~campaign:scaler_campaign ()
            in
            let serial_path = tmp_path ".journal" in
            let cluster_path = tmp_path ".journal" in
            let serial =
              Propane.Runner.run
                ~config:
                  (Propane.Runner.Config.make ~seed ~jobs:1
                     ~journal:serial_path ~budget ())
                ~plan:(fresh_plan ()) (scaler_sut ()) scaler_campaign
            in
            let plan = fresh_plan () in
            let cluster =
              cluster_run ~journal:cluster_path ~budget ~plan ()
            in
            check_results_match (what ^ " results") serial cluster;
            Alcotest.(check string)
              (what ^ " journal bytes")
              (read_file serial_path) (read_file cluster_path);
            Alcotest.(check int)
              (what ^ ": the fleet executes the plan's allocation")
              (Propane.Plan.allocated plan)
              (Propane.Results.count cluster);
            Alcotest.(check bool)
              (what ^ " plan exhausted")
              true
              (Propane.Plan.exhausted plan);
            if mode = Propane.Plan.Uniform then
              Alcotest.(check int)
                "uniform spends the whole budget" budget
                (Propane.Results.count cluster);
            Sys.remove serial_path;
            Sys.remove cluster_path)
          [ Propane.Plan.Uniform; Propane.Plan.Adaptive ]);
    Alcotest.test_case "dead worker's runs are reassigned" `Slow (fun () ->
        let serial_path = tmp_path ".journal" in
        let cluster_path = tmp_path ".journal" in
        let serial = serial_reference ~journal:serial_path in
        (* First worker abandons the connection after 3 results, exactly
           like a crashed process; the second drains the campaign. *)
        let die_after n = Some (fun ~completed -> if completed >= n then raise Exit) in
        let cluster =
          cluster_run ~journal:cluster_path
            ~worker_hooks:[ die_after 3; None ]
            ()
        in
        check_results_match "results" serial cluster;
        Alcotest.(check string)
          "journal bytes" (read_file serial_path) (read_file cluster_path);
        Sys.remove serial_path;
        Sys.remove cluster_path);
    Alcotest.test_case "silent worker hits its heartbeat deadline" `Slow
      (fun () ->
        let serial = serial_reference ~journal:(tmp_path ".journal") in
        (* A hand-rolled client that takes a batch and then goes quiet:
           the coordinator must reclaim its runs and finish via the real
           worker instead of waiting forever. *)
        let stalling addr =
          [
            Domain.spawn (fun () ->
                match Cluster.Address.connect addr with
                | Error _ -> Error "connect failed"
                | Ok fd ->
                    let reader = Cluster.Frame.reader fd in
                    let send m =
                      Cluster.Frame.write fd
                        (Cluster.Protocol.encode_to_coordinator m)
                    in
                    send
                      (Cluster.Protocol.Hello
                         {
                           version = Cluster.Protocol.version;
                           host = "stall";
                           pid = 1;
                           config_digest = "";
                         });
                    ignore (Cluster.Frame.read reader);
                    send Cluster.Protocol.Request_batch;
                    ignore (Cluster.Frame.read reader);
                    Unix.sleepf 2.0;
                    (try Unix.close fd with Unix.Unix_error _ -> ());
                    Ok 0);
          ]
        in
        let cluster =
          cluster_run ~heartbeat_timeout_s:0.3 ~worker_hooks:[ None ]
            ~extra_clients:stalling ()
        in
        check_results_match "results" serial cluster);
    Alcotest.test_case "cluster resume skips journalled runs" `Slow
      (fun () ->
        let serial_path = tmp_path ".journal" in
        let cluster_path = tmp_path ".journal" in
        let serial = serial_reference ~journal:serial_path in
        (* Seed the cluster journal with a truncated copy of the serial
           one (header + first 10 records), as an interrupted campaign
           would leave behind. *)
        let full = read_file serial_path in
        let lines = String.split_on_char '\n' full in
        let keep = 15 (* 5 header lines + 10 records *) in
        let truncated =
          String.concat "\n"
            (List.filteri (fun i _ -> i < keep) lines)
          ^ "\n"
        in
        let oc = open_out_bin cluster_path in
        output_string oc truncated;
        close_out oc;
        let cluster = cluster_run ~journal:cluster_path ~resume:true () in
        check_results_match "results" serial cluster;
        Alcotest.(check string)
          "journal bytes" (read_file serial_path) (read_file cluster_path);
        Sys.remove serial_path;
        Sys.remove cluster_path);
    Alcotest.test_case "cluster-fed live analysis equals batch" `Slow
      (fun () ->
        let live =
          Propane.Live.create ~model:scale_model
            ~targets:scaler_campaign.Propane.Campaign.targets ()
        in
        (* A rule that can never fire: the analysis rides along while
           the campaign runs to completion. *)
        let results =
          cluster_run ~live ~stop_when:(`Rankings_stable 1_000_000) ()
        in
        let digest = Propane.Live.digest live in
        Alcotest.(check int)
          "observed every run"
          (Propane.Results.count results)
          digest.Propane.Live.runs_observed;
        let matrices =
          match Propane.Estimator.estimate_all ~model:scale_model results with
          | Ok m -> m
          | Error msg -> Alcotest.failf "batch estimation failed: %s" msg
        in
        let batch = Propagation.Analysis.run_exn scale_model matrices in
        match Propane.Live.snapshot live with
        | Ok analysis ->
            Alcotest.(check string)
              "summaries byte-identical"
              (Fmt.str "%a" Propagation.Analysis.pp_summary batch)
              (Fmt.str "%a" Propagation.Analysis.pp_summary analysis)
        | Error msg -> Alcotest.failf "live snapshot failed: %s" msg);
    Alcotest.test_case "cluster stop-when drains and leaves a resumable journal"
      `Slow (fun () ->
        let serial_path = tmp_path ".journal" in
        let cluster_path = tmp_path ".journal" in
        let serial = serial_reference ~journal:serial_path in
        let live =
          Propane.Live.create ~model:scale_model
            ~targets:scaler_campaign.Propane.Campaign.targets ()
        in
        let stopped =
          cluster_run ~journal:cluster_path ~sut:slow_scaler_sut ~live
            ~stop_when:(`Rankings_stable 5) ()
        in
        if
          Propane.Results.count stopped
          >= Propane.Campaign.size scaler_campaign
        then
          Alcotest.failf "did not stop early: %d of %d"
            (Propane.Results.count stopped)
            (Propane.Campaign.size scaler_campaign);
        Alcotest.(check bool)
          "rule satisfied" true
          (Propane.Live.satisfied live (`Rankings_stable 5));
        (* Resuming the early-stopped journal (fast scaler this time)
           completes the campaign with exactly the uninterrupted
           journal's bytes. *)
        let resumed = cluster_run ~journal:cluster_path ~resume:true () in
        check_results_match "resumed" serial resumed;
        Alcotest.(check string)
          "journal bytes" (read_file serial_path) (read_file cluster_path);
        Sys.remove serial_path;
        Sys.remove cluster_path);
  ]

(* ------------------------------------------------------------------ *)
(* Handshake vetting: reject reasons name the mismatched field         *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A hand-rolled client that opens the conversation with [msg] and
   captures the coordinator's first reply. *)
let handshake_probe msg out addr =
  Domain.spawn (fun () ->
      match Cluster.Address.connect addr with
      | Error e ->
          out := Error e;
          Error e
      | Ok fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let reader = Cluster.Frame.reader fd in
              Cluster.Frame.write fd
                (Cluster.Protocol.encode_to_coordinator msg);
              (match Cluster.Frame.read reader with
              | Ok (Some p) -> (
                  match Cluster.Protocol.decode_to_worker p with
                  | Ok (Cluster.Protocol.Reject r) -> out := Ok r
                  | Ok m ->
                      out :=
                        Error
                          (Fmt.str "expected a reject, got %a"
                             Cluster.Protocol.pp_to_worker m)
                  | Error e -> out := Error e)
              | Ok None -> out := Error "connection closed without a reply"
              | Error e -> out := Error e);
              Ok 0))

let reject_tests =
  [
    Alcotest.test_case "reject reasons name the mismatched field" `Slow
      (fun () ->
        let bad_version = ref (Error "no reply") in
        let bad_digest = ref (Error "no reply") in
        let bad_join = ref (Error "no reply") in
        let pin = String.make 32 'f' in
        let clients addr =
          [
            handshake_probe
              (Cluster.Protocol.Hello
                 { version = 99; host = "probe"; pid = 1; config_digest = "" })
              bad_version addr;
            handshake_probe
              (Cluster.Protocol.Hello
                 {
                   version = Cluster.Protocol.version;
                   host = "probe";
                   pid = 2;
                   config_digest = pin;
                 })
              bad_digest addr;
            handshake_probe
              (Cluster.Protocol.Join
                 { version = Cluster.Protocol.version; host = "probe"; pid = 3 })
              bad_join addr;
          ]
        in
        ignore (cluster_run ~extra_clients:clients ());
        let check name needle r =
          match !r with
          | Ok reason ->
              if not (contains ~needle reason) then
                Alcotest.failf "%s: reason %S does not name %S" name reason
                  needle
          | Error e -> Alcotest.failf "%s: %s" name e
        in
        check "version skew"
          (Printf.sprintf "protocol version: worker speaks 99, coordinator \
                           speaks %d"
             Cluster.Protocol.version)
          bad_version;
        check "digest skew names the worker pin"
          (Printf.sprintf "config digest: worker pinned %s" pin)
          bad_digest;
        (* The reason also carries the coordinator's own digest, so the
           operator can fix the pin without a second round-trip. *)
        check "digest skew names the coordinator digest"
          (Digest.to_hex (Digest.string ""))
          bad_digest;
        check "fleet join on a one-shot coordinator" "single campaign"
          bad_join);
    Alcotest.test_case "a correctly pinned worker is accepted" `Slow
      (fun () ->
        (* The pin is the digest of the coordinator's recipe — "" here,
           since cluster_run passes none.  The pinned worker must drain
           the whole campaign alone. *)
        let pinned addr =
          [
            Domain.spawn (fun () ->
                let make (w : Cluster.Protocol.welcome) =
                  Ok
                    (Propane.Runner.executor ~seed:w.Cluster.Protocol.seed
                       (scaler_sut ()) scaler_campaign)
                in
                Cluster.Worker.run
                  ~config_digest:(Digest.to_hex (Digest.string ""))
                  ~connect:addr ~make ());
          ]
        in
        let results =
          cluster_run ~worker_hooks:[] ~extra_clients:pinned ()
        in
        Alcotest.(check int)
          "campaign completed"
          (Propane.Campaign.size scaler_campaign)
          (Propane.Results.count results));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ("frame", frame_tests);
      ("protocol", protocol_tests);
      ("address", address_tests);
      ("integration", integration_tests);
      ("reject", reject_tests);
    ]
