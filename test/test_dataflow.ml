(* Tests for the dataflow SUT builder and the executable twin of the
   paper's five-module example. *)

module B = Dataflow.Builder

let s = Propagation.Signal.make

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let close = Alcotest.(check (float 1e-9))

let double_block =
  B.block ~name:"DOUBLE" ~inputs:[ s "x" ] ~outputs:[ s "y" ] (fun () ->
      fun inputs -> [| inputs.(0) * 2 |])

let simple_system () =
  B.create_exn ~name:"simple" ~duration_ms:50 ~blocks:[ double_block ]
    ~stimuli:[ B.ramp (s "x") ] ()

let builder_tests =
  [
    Alcotest.test_case "model is derived from the wiring" `Quick (fun () ->
        let model = B.model (simple_system ()) in
        Alcotest.(check (list string))
          "inputs" [ "x" ]
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_inputs model));
        Alcotest.(check (list string))
          "outputs" [ "y" ]
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_outputs model)));
    Alcotest.test_case "golden run computes the transfer function" `Quick
      (fun () ->
        let system = simple_system () in
        let traces =
          Propane.Runner.golden_run (B.sut system)
            (Propane.Testcase.make ~id:"t" ~params:[])
        in
        Alcotest.(check int)
          "duration" 50
          (Propane.Trace_set.duration_ms traces);
        (* At millisecond j the stimulus writes j, the block doubles. *)
        Alcotest.(check int)
          "y(10)" 20
          (Propane.Trace.get (Propane.Trace_set.trace traces "y") 10);
        Alcotest.(check int)
          "x(10)" 10
          (Propane.Trace.get (Propane.Trace_set.trace traces "x") 10));
    Alcotest.test_case "periods and offsets gate execution" `Quick (fun () ->
        let slow =
          B.block ~name:"SLOW" ~period_ms:10 ~offset_ms:3 ~inputs:[ s "x" ]
            ~outputs:[ s "y" ]
            (fun () -> fun inputs -> [| inputs.(0) |])
        in
        let system =
          B.create_exn ~duration_ms:30 ~blocks:[ slow ]
            ~stimuli:[ B.ramp (s "x") ] ()
        in
        let traces =
          Propane.Runner.golden_run (B.sut system)
            (Propane.Testcase.make ~id:"t" ~params:[])
        in
        let y ms = Propane.Trace.get (Propane.Trace_set.trace traces "y") ms in
        Alcotest.(check int) "before offset" 0 (y 2);
        Alcotest.(check int) "at offset" 3 (y 3);
        Alcotest.(check int) "held" 3 (y 12);
        Alcotest.(check int) "next period" 13 (y 13));
    Alcotest.test_case "block state is per run" `Quick (fun () ->
        let counter =
          B.block ~name:"COUNT" ~inputs:[ s "x" ] ~outputs:[ s "y" ]
            (fun () ->
              let n = ref 0 in
              fun _ ->
                incr n;
                [| !n |])
        in
        let system =
          B.create_exn ~duration_ms:5 ~blocks:[ counter ]
            ~stimuli:[ B.constant 0 (s "x") ] ()
        in
        let run () =
          let traces =
            Propane.Runner.golden_run (B.sut system)
              (Propane.Testcase.make ~id:"t" ~params:[])
          in
          Propane.Trace.get (Propane.Trace_set.trace traces "y") 4
        in
        Alcotest.(check int) "first run" 5 (run ());
        Alcotest.(check int) "second run identical" 5 (run ()));
    Alcotest.test_case "create rejects bad wiring" `Quick (fun () ->
        let check_error label blocks stimuli =
          match B.create ~blocks ~stimuli () with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail label
        in
        (* stimulus on a produced signal *)
        check_error "stimulus on produced signal" [ double_block ]
          [ B.ramp (s "y") ];
        (* stimulus on an unread signal *)
        check_error "stimulus on unread signal" [ double_block ]
          [ B.ramp (s "x"); B.ramp (s "zz") ];
        (* no system outputs *)
        let loop =
          B.block ~name:"LOOP" ~inputs:[ s "p"; s "ext" ] ~outputs:[ s "p" ]
            (fun () -> fun inputs -> [| inputs.(0) |])
        in
        check_error "no outputs" [ loop ] [ B.ramp (s "ext") ];
        (* unwired input *)
        check_error "unwired input" [ double_block ] []);
    check_raises_invalid "non-positive period rejected" (fun () ->
        B.block ~name:"X" ~period_ms:0 ~inputs:[ s "x" ] ~outputs:[ s "y" ]
          (fun () -> fun i -> i));
    Alcotest.test_case "injection targets are the block inputs" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "targets" [ "x" ]
          (B.injection_targets (simple_system ())));
    Alcotest.test_case "wrong transfer arity fails the run" `Quick (fun () ->
        let bad =
          B.block ~name:"BAD" ~inputs:[ s "x" ] ~outputs:[ s "y" ] (fun () ->
              fun _ -> [||])
        in
        let system =
          B.create_exn ~duration_ms:5 ~blocks:[ bad ]
            ~stimuli:[ B.ramp (s "x") ] ()
        in
        match
          Propane.Runner.golden_run (B.sut system)
            (Propane.Testcase.make ~id:"t" ~params:[])
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    (* Synthetic systems: the service-bench workload generator must
       produce valid, deterministic SUTs at any size. *)
    Alcotest.test_case "synthetic generates a valid system" `Quick (fun () ->
        let system =
          B.synthetic ~modules:24 ~fan_in:3 ~fan_out:2 ~feedback:4 ~seed:7L ()
        in
        let model = B.model system in
        Alcotest.(check bool)
          "has injection targets" true
          (B.injection_targets system <> []);
        (* Feedback never swallows the final block, so the derived model
           keeps system outputs. *)
        Alcotest.(check bool)
          "has system outputs" true
          (Propagation.System_model.system_outputs model <> []);
        Alcotest.(check bool)
          "has system inputs" true
          (Propagation.System_model.system_inputs model <> []));
    Alcotest.test_case "synthetic is deterministic in the seed" `Quick
      (fun () ->
        let digest seed =
          let system =
            B.synthetic ~modules:12 ~fan_in:2 ~fan_out:2 ~feedback:2 ~seed
              ~duration_ms:40 ()
          in
          let traces =
            Propane.Runner.golden_run (B.sut system)
              (Propane.Testcase.make ~id:"t" ~params:[])
          in
          List.fold_left
            (fun acc s ->
              let tr = Propane.Trace_set.trace traces s in
              let rec go acc ms =
                if ms >= Propane.Trace_set.duration_ms traces then acc
                else go (Hashtbl.hash (acc, Propane.Trace.get tr ms)) (ms + 1)
              in
              go (Hashtbl.hash (acc, s)) 0)
            0
            (Propane.Trace_set.signals traces)
        in
        Alcotest.(check int) "same seed, same traces" (digest 42L) (digest 42L);
        Alcotest.(check bool)
          "different seed, different traces" true
          (digest 42L <> digest 43L));
    check_raises_invalid "synthetic rejects zero modules" (fun () ->
        B.synthetic ~modules:0 ~fan_in:1 ~fan_out:1 ~feedback:0 ~seed:1L ());
    check_raises_invalid "synthetic rejects zero fan_in" (fun () ->
        B.synthetic ~modules:3 ~fan_in:0 ~fan_out:1 ~feedback:0 ~seed:1L ());
    check_raises_invalid "synthetic rejects negative feedback" (fun () ->
        B.synthetic ~modules:3 ~fan_in:1 ~fan_out:1 ~feedback:(-1) ~seed:1L ());
  ]

(* ------------------------------------------------------------------ *)

let fig2_tests =
  [
    Alcotest.test_case "wiring matches the static Fig_example" `Quick
      (fun () ->
        let executable = B.model Dataflow.Fig2_system.system in
        let static = Propagation.Fig_example.system in
        Alcotest.(check (list string))
          "modules"
          (List.map Propagation.Sw_module.name
             (Propagation.System_model.modules static))
          (List.map Propagation.Sw_module.name
             (Propagation.System_model.modules executable));
        Alcotest.(check int)
          "pair count"
          (Propagation.System_model.pair_count static)
          (Propagation.System_model.pair_count executable);
        Alcotest.(check (list string))
          "inputs"
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_inputs static))
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_inputs executable)));
    Alcotest.test_case "measured matrices have the example's dimensions"
      `Slow (fun () ->
        let matrices = Dataflow.Fig2_system.measure () in
        Alcotest.(check int)
          "modules" 5
          (Propagation.String_map.cardinal matrices);
        let b = Propagation.String_map.find "B" matrices in
        Alcotest.(check int) "B inputs" 3 (Propagation.Perm_matrix.input_count b);
        Alcotest.(check int) "B outputs" 2 (Propagation.Perm_matrix.output_count b));
    Alcotest.test_case "measurement reflects the transfer functions" `Slow
      (fun () ->
        let matrices = Dataflow.Fig2_system.measure () in
        let get name' i k =
          Propagation.Perm_matrix.get
            (Propagation.String_map.find name' matrices)
            ~input:i ~output:k
        in
        (* C's second output is ext_c >> 8: the 8 low bits never show. *)
        close "C masks low bits" 0.5 (get "C" 1 2);
        (* A's a2 output is ext_a >> 6. *)
        close "A masks 6 bits" 0.625 (get "A" 1 2);
        (* E mixes b2 fully. *)
        close "E passes b2" 1.0 (get "E" 1 1);
        (* ext_e only contributes its top 6 bits. *)
        close "E masks ext_e" 0.375 (get "E" 2 1));
    Alcotest.test_case "measured analysis runs end to end" `Slow (fun () ->
        let matrices = Dataflow.Fig2_system.measure () in
        let analysis =
          Propagation.Analysis.run_exn
            (B.model Dataflow.Fig2_system.system)
            matrices
        in
        Alcotest.(check int)
          "22 example paths" 10
          (Propagation.Backtrack_tree.leaf_count
             (List.assoc (s "e_out")
                analysis.Propagation.Analysis.backtrack_trees)));
  ]

(* ------------------------------------------------------------------ *)
(* Random layered systems through the full pipeline.

   The generator builds an arbitrary layered dataflow system (random
   widths, transfer functions, periods), runs a miniature campaign on
   it, estimates its matrices and checks framework invariants that must
   hold for ANY system:
   - estimation never leaves [0, 1] (enforced by Perm_matrix);
   - the analysis pipeline succeeds and its trees are finite;
   - Eq. 6's closed form equals its literal tree-based definition;
   - golden runs are deterministic. *)

type gen_spec = {
  widths : int list;  (* blocks per layer *)
  fanin : int;  (* inputs per block, capped by the previous layer *)
  transfer_seed : int;
  period : int;
}

let spec_gen =
  QCheck2.Gen.(
    map4
      (fun widths fanin transfer_seed period ->
        { widths; fanin; transfer_seed; period })
      (list_size (int_range 1 3) (int_range 1 3))
      (int_range 1 3) int (int_range 1 3))

let transfer_of_seed seed arity =
  (* A deterministic arithmetic mix parameterised by the seed. *)
  let shift = abs seed mod 8 in
  let xor_mask = abs (seed / 8) mod 0x10000 in
  fun () inputs ->
    let sum = Array.fold_left ( + ) 0 inputs in
    [| ((sum lsr shift) lxor xor_mask) land 0xFFFF |] |> fun out ->
    ignore arity;
    out

let build_random spec =
  let signal l j = s (Printf.sprintf "l%d_%d" l j) in
  let prev_width l =
    if l = 0 then 2 (* external inputs ext_0, ext_1 *)
    else List.nth spec.widths (l - 1)
  in
  let prev_signal l j =
    if l = 0 then s (Printf.sprintf "ext_%d" j) else signal (l - 1) j
  in
  let blocks =
    List.concat
      (List.mapi
         (fun l width ->
           List.init width (fun j ->
               let fanin = min spec.fanin (prev_width l) in
               let inputs =
                 List.init fanin (fun k ->
                     prev_signal l ((j + k) mod prev_width l))
               in
               B.block
                 ~name:(Printf.sprintf "M%d_%d" l j)
                 ~period_ms:spec.period
                 ~inputs
                 ~outputs:[ signal l j ]
                 (transfer_of_seed (spec.transfer_seed + (31 * l) + j) fanin)))
         spec.widths)
  in
  (* Drive exactly the external signals the first layer reads (the
     input-pick formula below mirrors the block construction above). *)
  let width0 = List.hd spec.widths in
  let fanin0 = min spec.fanin 2 in
  let used =
    List.sort_uniq Int.compare
      (List.concat
         (List.init width0 (fun j ->
              List.init fanin0 (fun k -> (j + k) mod 2))))
  in
  B.create_exn ~name:"random" ~duration_ms:60 ~blocks
    ~stimuli:
      (List.map
         (fun j -> B.ramp ~slope:(7 - (4 * j)) (s (Printf.sprintf "ext_%d" j)))
         used)
    ()

let mini_campaign system =
  Propane.Campaign.make ~name:"mini"
    ~targets:(B.injection_targets system)
    ~testcases:[ Propane.Testcase.make ~id:"t" ~params:[] ]
    ~times:[ Simkernel.Sim_time.of_ms 10; Simkernel.Sim_time.of_ms 30 ]
    ~errors:[ Propane.Error_model.Bit_flip 0; Propane.Error_model.Bit_flip 9 ]

let random_system_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"pipeline invariants on random systems"
         ~count:25 spec_gen (fun spec ->
           let system = build_random spec in
           let sut = B.sut system in
           let model = B.model system in
           let results = Propane.Runner.run
             ~config:(Propane.Runner.Config.make ~seed:1L ())
             sut (mini_campaign system) in
           match Propane.Estimator.estimate_all ~model results with
           | Error _ ->
               (* Only the first target was injected; estimate per
                  module instead and check bounds. *)
               List.for_all
                 (fun m ->
                   let name = Propagation.Sw_module.name m in
                   let matrix =
                     Propane.Estimator.estimate_matrix ~model ~results name
                   in
                   Propagation.Perm_matrix.relative matrix >= 0.0
                   && Propagation.Perm_matrix.relative matrix <= 1.0)
                 (Propagation.System_model.modules model)
           | Ok matrices -> (
               match Propagation.Analysis.run model matrices with
               | Error _ -> false
               | Ok analysis ->
                   let graph = analysis.Propagation.Analysis.graph in
                   let trees =
                     List.map snd analysis.Propagation.Analysis.backtrack_trees
                   in
                   List.for_all
                     (fun tree ->
                       Propagation.Backtrack_tree.node_count tree < 100_000)
                     trees
                   && List.for_all
                        (fun sg ->
                          Float.abs
                            (Propagation.Exposure.signal_exposure graph sg
                            -. Propagation.Exposure.signal_exposure_via_trees
                                 trees sg)
                          < 1e-9)
                        (Propagation.System_model.internal_signals model))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"golden runs of random systems are deterministic"
         ~count:15 spec_gen (fun spec ->
           let system = build_random spec in
           let sut = B.sut system in
           let tc = Propane.Testcase.make ~id:"t" ~params:[] in
           let a = Propane.Runner.golden_run sut tc in
           let b = Propane.Runner.golden_run sut tc in
           Propane.Golden.compare_runs ~golden:a ~run:b () = []));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"injections only ever produce divergences at/after the instant"
         ~count:15 spec_gen (fun spec ->
           let system = build_random spec in
           let sut = B.sut system in
           let tc = Propane.Testcase.make ~id:"t" ~params:[] in
           let golden = Propane.Runner.golden_run sut tc in
           let outcome =
             Propane.Runner.run_experiment sut
               ~golden:(Propane.Golden.freeze golden) tc
               (Propane.Injection.make
                  ~target:(List.hd (B.injection_targets system))
                  ~at:(Simkernel.Sim_time.of_ms 20)
                  ~error:(Propane.Error_model.Bit_flip 3))
           in
           List.for_all
             (fun (d : Propane.Golden.divergence) -> d.first_ms >= 20)
             outcome.Propane.Results.divergences));
  ]

(* ------------------------------------------------------------------ *)

let cruise_tests =
  [
    Alcotest.test_case "derived model closes the loop" `Quick (fun () ->
        let model = B.model Dataflow.Cruise_system.system in
        Alcotest.(check (list string))
          "system inputs" [ "target_knob"; "speed_adc" ]
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_inputs model));
        Alcotest.(check (list string))
          "system outputs" [ "throttle" ]
          (List.map Propagation.Signal.name
             (Propagation.System_model.system_outputs model)));
    Alcotest.test_case "the vehicle tracks the demand profile" `Slow
      (fun () ->
        let traces =
          Propane.Runner.golden_run Dataflow.Cruise_system.sut
            (Propane.Testcase.make ~id:"t" ~params:[])
        in
        let v ms =
          Propane.Trace.get (Propane.Trace_set.trace traces "speed_adc") ms
        in
        (* accelerating towards 20 m/s, then towards 30 m/s *)
        Alcotest.(check bool) "ramping" true (v 500 > 500 && v 500 < 2_500);
        Alcotest.(check bool) "near final" true (v 2_999 > 2_500));
    Alcotest.test_case "plant refresh clobbers sensor injections (OB3 again)"
      `Slow (fun () ->
        let matrices = Dataflow.Cruise_system.measure () in
        let speed_s = Propagation.String_map.find "SPEED_S" matrices in
        close "P(speed_adc -> speed_flt)" 0.0
          (Propagation.Perm_matrix.get speed_s ~input:1 ~output:1);
        (* while software signals show mid-range permeabilities *)
        let reg = Propagation.String_map.find "REG" matrices in
        Alcotest.(check bool)
          "REG permeable" true
          (Propagation.Perm_matrix.non_weighted reg > 0.5));
    Alcotest.test_case "plant reads go through the trap layer" `Slow
      (fun () ->
        (* Injecting the actuator command must disturb the plant: the
           speed trace (a plant output) diverges. *)
        let sut = Dataflow.Cruise_system.sut in
        let tc = Propane.Testcase.make ~id:"t" ~params:[] in
        let golden = Propane.Runner.golden_run sut tc in
        let outcome =
          Propane.Runner.run_experiment sut
            ~golden:(Propane.Golden.freeze golden) tc
            (Propane.Injection.make ~target:"throttle"
               ~at:(Simkernel.Sim_time.of_ms 500)
               ~error:(Propane.Error_model.Bit_flip 11))
        in
        Alcotest.(check bool)
          "speed diverges" true
          (Propane.Results.divergence_of outcome "speed_adc" <> None));
    Alcotest.test_case "severity classification works on the cruise target"
      `Slow (fun () ->
        let campaign =
          Propane.Campaign.make ~name:"cruise-sev"
            ~targets:(B.injection_targets Dataflow.Cruise_system.system)
            ~testcases:[ Propane.Testcase.make ~id:"step" ~params:[] ]
            ~times:[ Simkernel.Sim_time.of_ms 1_500 ]
            ~errors:(Propane.Error_model.bit_flips ~width:16)
        in
        let reports =
          Propane.Severity.assess ~outputs:[ "throttle" ]
            ~mission_failed:Dataflow.Cruise_system.mission_failed
            Dataflow.Cruise_system.sut campaign
        in
        Alcotest.(check int) "targets" 4 (List.length reports);
        List.iter
          (fun (r : Propane.Severity.report) ->
            Alcotest.(check int)
              "partition" r.runs
              (List.fold_left
                 (fun acc v -> acc + Propane.Severity.count r v)
                 0 Propane.Severity.verdicts))
          reports);
  ]

let () =
  Alcotest.run "dataflow"
    [
      ("builder", builder_tests);
      ("fig2", fig2_tests);
      ("cruise", cruise_tests);
      ("random_systems", random_system_tests);
    ]
