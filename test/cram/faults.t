A crashing target does not abort the campaign: every failure becomes a
recorded outcome.  --chaos-crash-after 0 makes the SUT raise on each
injection's own step, so all 832 runs crash at their injection instant;
the journal records them as run2 records and the telemetry counts them.

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --chaos-crash-after 0 --journal crash.journal --save crash.results --telemetry - > crash.out
  $ grep -o '"crashed":832,"hung":0,"retried":0' crash.out
  "crashed":832,"hung":0,"retried":0
  $ grep '^failed runs' crash.out
  failed runs: 832 crashed, 0 hung
  $ grep -c '^run2' crash.journal
  832

Retries re-execute failed runs on fresh RNG streams.  These crashes are
deterministic, so every run exhausts its budget of 2:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --chaos-crash-after 0 --retries 2 --telemetry - > retry.out
  $ grep -o '"crashed":832,"hung":0,"retried":1664' retry.out
  "crashed":832,"hung":0,"retried":1664

A killed crashing campaign resumes to byte-identical results: keep 100
committed records plus a torn tail, then continue.

  $ head -n 105 crash.journal > part.journal
  $ printf 'run2\t500\tm' >> part.journal
  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --chaos-crash-after 0 --journal part.journal --resume --save resumed.results > /dev/null
  $ grep -c '^run' part.journal
  832
  $ cmp crash.results resumed.results

A hanging target is cut off by the wall-clock watchdog.  Each injected
run burns 25ms of wall clock per step from the injection on, so a 20ms
budget hangs all 832 runs, across 4 worker domains:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --chaos-hang-after 0 --run-timeout-ms 20 --jobs 4 --telemetry - > hang.out
  $ grep -o '"crashed":0,"hung":832' hang.out
  "crashed":0,"hung":832
  $ grep '^failed runs' hang.out
  failed runs: 0 crashed, 832 hung

--fail-fast restores abort semantics; the failed outcome is journalled
before the campaign dies:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --chaos-crash-after 0 --fail-fast --journal ff.journal > /dev/null
  propane campaign: run 0 crashed@500ms (simulated crash 0 ms after injection); aborting (--fail-fast)
  [1]
  $ grep -c '^run2' ff.journal
  1

End of fault-injection CLI checks.
