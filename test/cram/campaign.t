The campaign engine journals every outcome and reports telemetry.
A reduced campaign (--cases 2 --times 1) is 832 runs.

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --save full.results --journal full.journal > full.out
  $ grep '^results saved' full.out
  results saved to full.results
  $ head -1 full.journal
  propane-journal 1
  $ grep -c '^run' full.journal
  832

Machine-readable telemetry ("-" writes to stdout); timings vary, the
counters do not:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --telemetry - | grep -o '"total":832,"completed":832,"skipped":0,"jobs":1'
  "total":832,"completed":832,"skipped":0,"jobs":1

Parallel workers produce byte-identical results:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --jobs 3 --save par.results > /dev/null
  $ cmp full.results par.results

Resume after a kill: keep 100 committed records plus the torn tail a
killed writer leaves, then continue.  (The header is six lines: five
metadata fields plus the recipe replay needs.)  The resumed campaign
skips the journalled runs, completes the journal, and matches the
uninterrupted results byte for byte:

  $ head -n 106 full.journal > part.journal
  $ printf 'run\t500\tm' >> part.journal
  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --journal part.journal --resume --save resumed.results --telemetry resumed.json > /dev/null
  $ grep -o '"skipped":100' resumed.json
  "skipped":100
  $ grep -c '^run' part.journal
  832
  $ cmp full.results resumed.results

--resume without a journal is refused:

  $ ../../bin/propane_cli.exe campaign --resume
  propane campaign: --resume requires --journal
  [1]
