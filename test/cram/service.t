Campaign-as-a-service from the command line: one daemon owning a
worker fleet and a crash-safe queue of campaigns, driven by the
submit/status/cancel clients over its HTTP control surface.

Usage errors exit 124 before any daemon is involved:

  $ ../../bin/propane_cli.exe submit
  propane: required option --http is missing
  Usage: propane submit [OPTION]…
  Try 'propane submit --help' or 'propane --help' for more information.
  [124]

  $ ../../bin/propane_cli.exe submit --http unix:http.sock --weight 0
  propane: option '--weight': --weight must be at least 1, got 0
  Usage: propane submit [OPTION]…
  Try 'propane submit --help' or 'propane --help' for more information.
  [124]

  $ ../../bin/propane_cli.exe cancel --http unix:http.sock
  propane: required argument ID is missing
  Usage: propane cancel [OPTION]… ID
  Try 'propane cancel --help' or 'propane --help' for more information.
  [124]

  $ ../../bin/propane_cli.exe status --http not-an-address c1
  propane: option '--http': invalid address "not-an-address" (expected
           unix:PATH or tcp:HOST:PORT)
  Usage: propane status [OPTION]… [ID]
  Try 'propane status --help' or 'propane --help' for more information.
  [124]

A daemon that is not there is a transport error (exit 1), not a server
report:

  $ ../../bin/propane_cli.exe status --http unix:missing.sock c0001 2>/dev/null
  [1]

Start the service with two fleet workers.  --exit-when-idle makes it
drain by itself once every accepted campaign is terminal, so the cram
test needs no kill/timeout choreography:

  $ ../../bin/propane_cli.exe serve --state-dir state --workers 2 --exit-when-idle > serve.log 2>&1 &

Failures the server reports exit 3 and name the problem:

  $ ../../bin/propane_cli.exe status --http unix:state/http.sock c9999
  propane status: server: no campaign c9999 (HTTP 404)
  [3]

  $ ../../bin/propane_cli.exe cancel --http unix:state/http.sock c9999
  propane cancel: server: no campaign c9999 (HTTP 404)
  [3]

Submit prints the fresh campaign id on stdout and nothing else:

  $ ../../bin/propane_cli.exe submit --http unix:state/http.sock --cases 2 --times 2 --seed 7
  c0001

The daemon drains once the campaign is done:

  $ wait

The service journal is byte-identical to a serial run of the same
flags — the determinism contract, across a daemon, an HTTP hop and two
worker processes:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 2 --seed 7 --journal serial.journal > serial.out
  $ cmp state/c0001.journal serial.journal

The manifest records the submission and its terminal state:

  $ grep -c '^campaign.c0001' state/manifest
  1
  $ grep '^state.c0001' state/manifest | tail -1 | cut -f3
  done
