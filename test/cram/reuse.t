Cell-oriented campaign reuse.  A campaign run with --reuse CACHE_DIR
classifies every (module, injected input) cell against the cache: the
first (cold) run measures everything and fills the cache, a second
(warm) run over an unchanged build reuses every cell and re-injects
nothing.

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --reuse rcache > cold.out
  $ grep '^reused' cold.out
  reused 0 of 13 cells
  $ cat rcache/stats.json
  {
    "cells": 13,
    "reused": 0,
    "fresh": 13,
    "hit_rate": 0.0000,
    "runs_total": 832,
    "runs_selected": 832,
    "runs_skipped": 0
  }

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --reuse rcache > warm.out
  $ grep '^reused' warm.out
  reused 13 of 13 cells
  $ cat rcache/stats.json
  {
    "cells": 13,
    "reused": 13,
    "fresh": 0,
    "hit_rate": 1.0000,
    "runs_total": 832,
    "runs_selected": 0,
    "runs_skipped": 832
  }

Apart from the reuse counter itself, the warm output — every table,
ranking and interval — is byte-identical to the cold run's:

  $ grep -v '^reused' cold.out > cold.tables
  $ grep -v '^reused' warm.out > warm.tables
  $ cmp cold.tables warm.tables

A reuse campaign journals the plan as cell provenance records, and the
journal stays resumable:

  $ rm -rf jcache
  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --reuse jcache --journal reuse.journal > /dev/null
  $ grep -c '^cell' reuse.journal
  13
  $ grep -c 'fresh$' reuse.journal
  13

Under --stop-when the rule judges freshly injected runs only, and so
does the "stopped early" report.  A cold early-stopped campaign caches
the targets it measured completely (12 of 13 here — partially measured
targets must never poison the cache):

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --stop-when ci-width:0.4 --reuse scache > stop-cold.out
  $ grep -E '^(reused|stopped early)' stop-cold.out
  reused 0 of 13 cells
  stopped early: 778 of 832 runs (--stop-when ci-width:0.4)

The warm re-run selects only the unfinished target's 64 runs, and "N of
M" counts those fresh runs, not the 832-run campaign the cache already
covers:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --stop-when ci-width:0.4 --reuse scache > stop-warm.out
  $ grep -E '^(reused|stopped early)' stop-warm.out
  reused 12 of 13 cells
  stopped early: 10 of 64 runs (--stop-when ci-width:0.4)
