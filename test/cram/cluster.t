Distributed campaigns: a coordinator hands batches of runs to worker
processes and merges their outcomes.  Whatever the process topology,
journal and results must be byte-identical to a serial run with the
same seed.

The serial reference (--cases 2 --times 1 is 832 runs):

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --save serial.results --journal serial.journal > serial.out
  $ grep -c '^run' serial.journal
  832

Two local worker processes:

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --workers 2 --save workers.results --journal workers.journal > workers.out
  $ cmp serial.journal workers.journal
  $ cmp serial.results workers.results

Workers that keep crashing (each exits after 150 results) change
nothing: the coordinator reassigns their outstanding runs and respawns
replacements.  -q silences the respawn warnings, whose count depends
on timing:

  $ ../../bin/propane_cli.exe campaign -q --cases 2 --times 1 --workers 2 --chaos-worker-kill-after 150 --save chaos.results --journal chaos.journal > chaos.out
  $ cmp serial.journal chaos.journal
  $ cmp serial.results chaos.results

The cluster telemetry accounts for every run and labels worker slots
(host/pid labels vary, so only the stable prefix is checked):

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --workers 2 --telemetry - | grep -o '"total":832,"completed":832,"skipped":0,"jobs":2'
  "total":832,"completed":832,"skipped":0,"jobs":2

Nonsense is rejected at the command line (exit 124), not deep in the
engine:

  $ ../../bin/propane_cli.exe campaign --jobs 0
  propane: option '--jobs': --jobs must be at least 1, got 0
  Usage: propane campaign [OPTION]…
  Try 'propane campaign --help' or 'propane --help' for more information.
  [124]
  $ ../../bin/propane_cli.exe campaign --retries=-1
  propane: option '--retries': --retries must be at least 0, got -1
  Usage: propane campaign [OPTION]…
  Try 'propane campaign --help' or 'propane --help' for more information.
  [124]
  $ ../../bin/propane_cli.exe campaign --workers=-1
  propane: option '--workers': --workers must be at least 0, got -1
  Usage: propane campaign [OPTION]…
  Try 'propane campaign --help' or 'propane --help' for more information.
  [124]
  $ ../../bin/propane_cli.exe campaign --listen bogus
  propane: option '--listen': invalid address "bogus" (expected unix:PATH or
           tcp:HOST:PORT)
  Usage: propane campaign [OPTION]…
  Try 'propane campaign --help' or 'propane --help' for more information.
  [124]

Modes that cannot combine are refused before any run executes:

  $ ../../bin/propane_cli.exe campaign --keep-traces --workers 1
  propane campaign: --keep-traces is unavailable with --workers/--listen (traces stay inside the worker processes)
  [1]
  $ ../../bin/propane_cli.exe campaign --jobs 2 --workers 1
  propane campaign: --jobs parallelises in-process domains; it cannot combine with --workers/--listen
  [1]
  $ ../../bin/propane_cli.exe campaign --chaos-worker-kill-after 5
  propane campaign: --chaos-worker-kill-after needs worker processes (--workers)
  [1]

A worker with nobody to talk to gives up with a clear error:

  $ ../../bin/propane_cli.exe worker --connect unix:./no-such.sock
  propane worker: cannot connect to unix:./no-such.sock: No such file or directory
  [1]
