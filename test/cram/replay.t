A campaign journal carries the recipe needed to rebuild its exact
campaign; `propane replay` re-executes one journalled index on its
original RNG stream and verifies the outcome byte for byte.

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --journal c.journal > /dev/null
  $ ../../bin/propane_cli.exe replay --journal c.journal --index 0
  run 0 of c.journal: outcome matches journal (completed, 1 divergence)

Any diverged record replays identically — pick the first one straight
from the journal:

  $ IDX=$(awk -F'\t' '$1=="run" && $7!="0" {print $2; exit}' c.journal)
  $ ../../bin/propane_cli.exe replay --journal c.journal --index "$IDX" | grep -c 'outcome matches journal'
  1

Replay is scheduling-independent: a journal written under --jobs with a
temporal error model replays the same way.

  $ ../../bin/propane_cli.exe campaign --cases 2 --times 1 --jobs 2 --model intermittent:4:16 --journal t.journal > /dev/null
  $ ../../bin/propane_cli.exe replay --journal t.journal --index 0 | grep -c 'outcome matches journal'
  1

--keep-traces dumps the verified run's signal traces next to the
journal:

  $ ../../bin/propane_cli.exe replay --journal c.journal --index 0 --keep-traces
  run 0 of c.journal: outcome matches journal (completed, 1 divergence)
  traces written to c.journal.run0.csv
  $ head -1 c.journal.run0.csv | cut -d, -f1
  ms

Usage errors exit 1: an index the journal never recorded, and a journal
with no recipe line (e.g. written by a bare library caller):

  $ ../../bin/propane_cli.exe replay --journal c.journal --index 999999
  propane replay: journal has no record for index 999999
  [1]
  $ grep -v '^recipe' c.journal > norecipe.journal
  $ ../../bin/propane_cli.exe replay --journal norecipe.journal --index 0
  propane replay: journal carries no recipe line (written by an older propane, or by a bare library caller); replay cannot rebuild its campaign
  [1]
